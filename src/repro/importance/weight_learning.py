"""Learning edge-type weights from user feedback (Section VIII).

The paper's future work: "consider how to improve the model such that
user feedback can be used to adjust not only the importance values of
the nodes, but also the weights of the edges of the database graph."

This module implements the natural first realization: pairwise
preference learning over *edge types*.  Every labeled click gives a
preference pair — the clicked answer versus a higher-ranked non-clicked
answer.  The edge types the clicked answer uses more than the skipped
one should get heavier, and vice versa; multiplicative updates with a
small learning rate keep all weights positive, and per-source-table
normalization keeps the random walk comparable across rounds.

The learner is model-agnostic: it only needs, per preference pair, the
edge-type usage counts of the two trees.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence, Tuple

from ..config import EdgeWeights
from ..exceptions import EvaluationError
from ..graph.datagraph import DataGraph
from ..model.jtt import JoinedTupleTree

#: An edge type: (source relation, target relation).
EdgeType = Tuple[str, str]


def edge_type_counts(
    graph: DataGraph, tree: JoinedTupleTree
) -> Dict[EdgeType, int]:
    """How many edges of each (relation, relation) type a tree uses.

    Both directions of each undirected tree edge are counted once, under
    the canonical orientation (lexicographically smaller relation first
    on ties of direction existence) — the learner updates both directed
    weights of a type together, mirroring how Table II lists pairs.
    """
    counts: Dict[EdgeType, int] = {}
    for a, b in tree.edges:
        rel_a = graph.info(a).relation
        rel_b = graph.info(b).relation
        key = (rel_a, rel_b) if rel_a <= rel_b else (rel_b, rel_a)
        counts[key] = counts.get(key, 0) + 1
    return counts


@dataclass
class PreferencePair:
    """One training signal: the user preferred ``chosen`` to ``skipped``."""

    chosen: JoinedTupleTree
    skipped: JoinedTupleTree


class EdgeWeightLearner:
    """Multiplicative-update learner over edge-type weights.

    Args:
        graph: the data graph (supplies relations).
        base: starting weights (defaults to Table II).
        learning_rate: step size of the multiplicative update.
        max_factor: clamp on the cumulative multiplier per edge type
            (keeps a run of one-sided feedback from exploding a weight).
    """

    def __init__(
        self,
        graph: DataGraph,
        base: Optional[EdgeWeights] = None,
        learning_rate: float = 0.1,
        max_factor: float = 4.0,
    ) -> None:
        if learning_rate <= 0:
            raise EvaluationError("learning_rate must be positive")
        if max_factor < 1.0:
            raise EvaluationError("max_factor must be >= 1")
        self.graph = graph
        self.base = base or EdgeWeights()
        self.learning_rate = learning_rate
        self.max_factor = max_factor
        self._log_factor: Dict[EdgeType, float] = {}
        self._updates = 0

    # ------------------------------------------------------------- updates

    def observe(self, pair: PreferencePair) -> None:
        """Fold one preference pair into the accumulated factors."""
        chosen = edge_type_counts(self.graph, pair.chosen)
        skipped = edge_type_counts(self.graph, pair.skipped)
        log_cap = math.log(self.max_factor)
        for edge_type in set(chosen) | set(skipped):
            delta = chosen.get(edge_type, 0) - skipped.get(edge_type, 0)
            if delta == 0:
                continue
            current = self._log_factor.get(edge_type, 0.0)
            current += self.learning_rate * delta
            self._log_factor[edge_type] = max(-log_cap, min(log_cap, current))
        self._updates += 1

    def observe_ranking(
        self,
        ranked: Sequence[JoinedTupleTree],
        clicked_index: int,
    ) -> None:
        """A click at position ``clicked_index`` prefers that answer to
        every answer ranked above it (the classic click-skip model)."""
        if not 0 <= clicked_index < len(ranked):
            raise EvaluationError(
                f"clicked_index {clicked_index} out of range"
            )
        chosen = ranked[clicked_index]
        for skipped in ranked[:clicked_index]:
            self.observe(PreferencePair(chosen, skipped))

    # ------------------------------------------------------------- results

    @property
    def updates(self) -> int:
        """Number of preference pairs folded in."""
        return self._updates

    def factor(self, source_relation: str, target_relation: str) -> float:
        """The current multiplier for one edge type."""
        a, b = sorted((source_relation.lower(), target_relation.lower()))
        return math.exp(self._log_factor.get((a, b), 0.0))

    def learned_weights(self) -> EdgeWeights:
        """A new :class:`EdgeWeights` with the factors applied.

        Both directions of each relation pair receive the same factor;
        unknown pairs keep their base weight.  The caller rebuilds the
        graph (and downstream importance / indexes) with the result.
        """
        learned = EdgeWeights(
            weights=dict(self.base.weights), default=self.base.default
        )
        for (rel_a, rel_b), log_factor in self._log_factor.items():
            factor = math.exp(log_factor)
            for source, target in ((rel_a, rel_b), (rel_b, rel_a)):
                current = learned.weight_for(source, target)
                learned.set_weight(source, target, current * factor)
        return learned
