"""The end-to-end CI-Rank system facade.

:class:`CIRankSystem` wires the whole stack together: database -> data
graph (with entity merging) -> inverted index -> importance vector ->
optional star/pairs index -> per-query scorer and branch-and-bound
search.  It is the one-stop entry point the examples and the CLI use::

    from repro import CIRankSystem, generate_imdb

    system = CIRankSystem.from_database(generate_imdb(), merge_tables=(
        "actor", "actress", "director", "producer"))
    for answer in system.search("halloran winmont", k=5):
        print(system.describe(answer))
"""

from __future__ import annotations

import dataclasses
import time
from typing import Dict, Iterable, List, Optional

import numpy as np

from .config import EdgeWeights, RWMPParams, SearchParams
from .db.database import Database
from .exceptions import ReproError
from .graph.builder import GraphBuilder
from .graph.datagraph import DataGraph
from .importance.feedback import FeedbackModel
from .importance.pagerank import ImportanceVector, pagerank
from .indexing.pairs import PairsIndex
from .indexing.star import StarIndex
from .model.answer import RankedAnswer
from .rwmp.dampening import DampeningModel
from .rwmp.scoring import RWMPScorer
from .search.branch_and_bound import BranchAndBoundSearch, SearchStats
from .search.naive import NaiveSearch
from .utils.lru import CacheStats, LRUCache
from .text.inverted_index import InvertedIndex
from .text.matcher import KeywordMatcher, MatchSets

#: Distinct (query, graph version) match sets kept hot per system.
MATCH_CACHE_SIZE = 256

#: Default capacity of the cross-query answer cache (proven top-k
#: results reused across repeated searches; 0 disables).
ANSWER_CACHE_SIZE = 256


class CIRankSystem:
    """A ready-to-query CI-Rank deployment over one database graph."""

    def __init__(
        self,
        graph: DataGraph,
        index: InvertedIndex,
        importance: ImportanceVector,
        params: Optional[RWMPParams] = None,
        search_params: Optional[SearchParams] = None,
        answer_cache_size: int = ANSWER_CACHE_SIZE,
    ) -> None:
        self.graph = graph
        self.index = index
        self.importance = importance
        self.params = params or RWMPParams()
        self.search_params = search_params or SearchParams()
        self.dampening = DampeningModel(self.importance, self.params)
        self.matcher = KeywordMatcher(index)
        self.graph_index: Optional[object] = None
        # Match-set lookups repeat verbatim across searches (pagination,
        # stats re-runs, benchmark loops); key on the graph version so a
        # mutation invalidates naturally.
        self._match_cache = LRUCache(MATCH_CACHE_SIZE)
        # Cross-query cache of proven-optimal top-k results, versioned
        # by (graph version, ranking epoch) — see
        # repro.storage.answer_cache.  Local import: repro.storage pulls
        # in serialize, which imports this module.
        from .storage.answer_cache import AnswerCache
        self._answer_cache = AnswerCache(answer_cache_size)
        # Bumped whenever the ranking itself changes (feedback re-rank);
        # pairs with graph.version to guard cached answers.
        self._ranking_epoch = 0
        #: Observability of the most recent :meth:`search` call (the
        #: CLI's ``--stats`` flag reads these).
        self.last_search_stats: Optional[SearchStats] = None
        self.last_cache_stats: Optional[Dict[str, CacheStats]] = None
        #: Counters of the most recent index build through
        #: :meth:`attach_index` (None when the index was warm-started).
        self.last_index_build = None
        #: Whether :meth:`attach_index` served the persisted index
        #: instead of rebuilding.
        self.index_warm_started = False

    @property
    def answer_cache(self):
        """The versioned cross-query answer cache (read-mostly accessor)."""
        return self._answer_cache

    # ------------------------------------------------------------ assembly

    @classmethod
    def from_database(
        cls,
        db: Database,
        merge_tables: Iterable[str] = (),
        weights: Optional[EdgeWeights] = None,
        params: Optional[RWMPParams] = None,
        search_params: Optional[SearchParams] = None,
        teleport_vector: Optional[np.ndarray] = None,
        index_kind: Optional[str] = None,
        index_path=None,
        index_workers: int = 1,
        answer_cache_size: int = ANSWER_CACHE_SIZE,
    ) -> "CIRankSystem":
        """Build the full stack from a database.

        Args:
            db: the source database.
            merge_tables: tables subject to entity merging (Section VI-A).
            weights: edge weight table (defaults to Table II).
            params: RWMP parameters.
            search_params: top-k search parameters.
            teleport_vector: optional biased teleport vector (user
                feedback, Section VI-A).
            index_kind: ``"star"`` or ``"pairs"`` to attach a graph
                index immediately (None leaves the system index-free).
            index_path: optional persistence directory for the index;
                a fresh one stored there warm-starts this deployment,
                and a rebuild (stale or absent) is saved back.
            index_workers: process count for index construction.
            answer_cache_size: capacity of the cross-query answer cache
                (0 disables it).
        """
        params = params or RWMPParams()
        graph = GraphBuilder(weights, merge_tables).build(db)
        index = InvertedIndex.build(graph)
        importance = pagerank(
            graph, teleport=params.teleport, teleport_vector=teleport_vector
        )
        system = cls(
            graph, index, importance, params, search_params,
            answer_cache_size=answer_cache_size,
        )
        if index_kind is not None:
            system.attach_index(
                index_kind, path=index_path, workers=index_workers
            )
        elif index_path is not None:
            raise ReproError(
                "index_path given without index_kind; pass "
                "index_kind='star' or 'pairs'"
            )
        return system

    @classmethod
    def from_csv_directory(
        cls,
        schema,
        directory,
        merge_tables: Iterable[str] = (),
        weights: Optional[EdgeWeights] = None,
        params: Optional[RWMPParams] = None,
        search_params: Optional[SearchParams] = None,
    ) -> "CIRankSystem":
        """Build the full stack from a CSV dump directory.

        See :func:`repro.db.load_csv_directory` for the expected layout
        (one ``<table>.csv`` per table plus an optional ``links.csv``).
        """
        from .db.csv_loader import load_csv_directory
        db = load_csv_directory(schema, directory)
        return cls.from_database(
            db, merge_tables=merge_tables, weights=weights,
            params=params, search_params=search_params,
        )

    def build_star_index(self, **kwargs) -> StarIndex:
        """Attach a star index (Section V-B) used by subsequent searches."""
        self.graph_index = StarIndex(self.graph, self.dampening, **kwargs)
        self.last_index_build = self.graph_index.build_stats
        self.index_warm_started = False
        return self.graph_index

    def build_pairs_index(self, **kwargs) -> PairsIndex:
        """Attach the naive all-pairs index (Section V-A)."""
        self.graph_index = PairsIndex(self.graph, self.dampening, **kwargs)
        self.last_index_build = self.graph_index.build_stats
        self.index_warm_started = False
        return self.graph_index

    def attach_index(self, kind: str, path=None, workers: int = 1, **kwargs):
        """Attach a graph index, warm-starting from ``path`` when possible.

        With ``path`` set, a fresh persisted index there is loaded
        instead of rebuilt (:attr:`index_warm_started` reports which
        happened); a stale or absent one triggers a kernel build whose
        result is saved back, so the *next* start is warm.  Without
        ``path`` this is a plain build.

        Args:
            kind: ``"star"`` or ``"pairs"``.
            path: optional index directory (see
                :mod:`repro.storage.index_store`).
            workers: process count for the kernel builder.
            **kwargs: forwarded to the index constructor on a rebuild
                (``horizon``, ``max_ball``, ``star_relations``...).

        Returns:
            The attached index.
        """
        if kind not in ("star", "pairs"):
            raise ReproError(f"unknown index kind {kind!r}")
        # Local import: repro.storage.serialize imports this module.
        from .exceptions import StaleIndexError
        from .storage.index_store import load_index, save_index
        if path is not None:
            try:
                self.graph_index = load_index(
                    path, self.graph, self.dampening, kind=kind
                )
                self.last_index_build = None
                self.index_warm_started = True
                return self.graph_index
            except StaleIndexError:
                pass  # rebuild and overwrite below
            except ReproError:
                pass  # nothing persisted yet; build and save below
        builder = (
            self.build_star_index if kind == "star" else
            self.build_pairs_index
        )
        index = builder(workers=workers, **kwargs)
        if path is not None:
            save_index(index, path)
        return index

    def apply_feedback(self, feedback: FeedbackModel) -> None:
        """Re-rank importance under a feedback-biased teleport vector."""
        self.importance = pagerank(
            self.graph,
            teleport=self.params.teleport,
            teleport_vector=feedback.teleport_vector(),
        )
        self.dampening = DampeningModel(self.importance, self.params)
        # Cached answers were proven under the old ranking; the epoch
        # bump invalidates them lazily at their next lookup.
        self._ranking_epoch += 1
        if self.graph_index is not None:
            raise ReproError(
                "feedback changes dampening rates; rebuild the graph index "
                "(build_star_index / build_pairs_index) after apply_feedback"
            )

    # -------------------------------------------------------------- search

    def scorer_for(self, match: MatchSets) -> RWMPScorer:
        """The RWMP scorer for one query's match sets."""
        return RWMPScorer(self.graph, self.index, match, self.dampening)

    def search(
        self,
        query_text: str,
        k: Optional[int] = None,
        diameter: Optional[int] = None,
        algorithm: str = "branch-and-bound",
        engine: Optional[str] = None,
    ) -> List[RankedAnswer]:
        """Top-k keyword search.

        Args:
            query_text: whitespace-separated keywords (AND semantics).
            k: number of answers (defaults to the configured k).
            diameter: answer diameter cap (defaults to configured D).
            algorithm: ``"branch-and-bound"`` (default) or ``"naive"``.
            engine: lazy-loop candidate representation — ``"arena"``
                (flat columnar arena) or ``"object"`` (per-candidate
                trees); defaults to the configured engine.  Both return
                identical top-k up to tie classes; the flag exists so a
                regression is one CLI switch away from bisection.

        Returns:
            Ranked answers, best first (possibly fewer than k).
        """
        if algorithm not in ("branch-and-bound", "naive"):
            raise ReproError(f"unknown algorithm {algorithm!r}")
        self.last_search_stats = None
        self.last_cache_stats = None
        match = self._match_for(query_text)
        if self.search_params.semantics == "or":
            # OR needs only one matchable keyword
            if not any(match.per_keyword.values()):
                return []
        elif not match.matchable:
            return []
        # dataclasses.replace keeps every configured field (including any
        # added later) instead of re-listing them by hand.
        overrides = {}
        if k is not None:
            overrides["k"] = k
        if diameter is not None:
            overrides["diameter"] = diameter
        if engine is not None:
            overrides["engine"] = engine
        params = dataclasses.replace(self.search_params, **overrides)
        cache_key = None
        lookup_seconds = 0.0
        if algorithm == "branch-and-bound" and self._answer_cache.enabled:
            # Cross-query answer cache: key on the *analyzed* keywords
            # (two raw strings normalizing identically share an entry),
            # the resolved params, and the index provenance; the stored
            # (graph version, ranking epoch) guard is checked inside
            # lookup, which counts stale entries as invalidations.
            from .storage.answer_cache import answer_cache_key
            start = time.perf_counter()
            cache_key = answer_cache_key(
                tuple(match.keywords), params, self._index_fingerprint()
            )
            cached = self._answer_cache.lookup(
                cache_key, self.graph.version, self._ranking_epoch
            )
            lookup_seconds = time.perf_counter() - start
            if cached is not None:
                stats = SearchStats()
                stats.served_from_cache = True
                stats.cache_lookup_seconds = lookup_seconds
                stats.answers_found = len(cached)
                self.last_search_stats = stats
                self._publish_cache_stats()
                return cached
        scorer = self.scorer_for(match)
        if algorithm == "branch-and-bound":
            search = BranchAndBoundSearch(
                self.graph, scorer, match, params, index=self.graph_index
            )
        else:
            search = NaiveSearch(self.graph, scorer, match, params)
        answers = search.run()
        self.last_search_stats = getattr(search, "stats", None)
        if self.last_search_stats is not None:
            self.last_search_stats.cache_lookup_seconds += lookup_seconds
        if cache_key is not None and getattr(search, "last_proven", False):
            # Only proven-optimal results are reusable; anytime aborts
            # (max_candidates) carry no certificate.  Proven *empty*
            # results are cached too.
            self._answer_cache.store(
                cache_key, self.graph.version, self._ranking_epoch, answers
            )
        self._publish_cache_stats(scorer)
        return answers

    def _index_fingerprint(self):
        """Structural identity of the attached graph index (or None)."""
        index = self.graph_index
        if index is None:
            return None
        return (type(index).__name__, getattr(index, "horizon", None))

    def _publish_cache_stats(self, scorer: Optional[RWMPScorer] = None):
        """Refresh :attr:`last_cache_stats` after a search."""
        stats: Dict[str, CacheStats] = (
            dict(scorer.cache_stats()) if scorer is not None else {}
        )
        stats["match"] = self._match_cache.stats()
        stats["answers"] = self._answer_cache.stats()
        self.last_cache_stats = stats

    def _match_for(self, query_text: str) -> MatchSets:
        """Match sets for a query, memoized per (query, graph version)."""
        key = (query_text, self.graph.version)
        match = self._match_cache.get(key)
        if match is None:
            match = self.matcher.match(query_text)
            self._match_cache.put(key, match)
        return match

    # ------------------------------------------------------------- display

    def describe(self, answer: RankedAnswer) -> str:
        """One-line description of an answer."""
        return answer.describe(self.graph)

    def explain(self, query_text: str, answer: RankedAnswer) -> str:
        """The full message-flow breakdown of one answer's score.

        Renders per-source generation counts, per-hop splits/dampening,
        the binding (minimum) source at each keyword node, and the
        weakest link pulling the average down (see
        :mod:`repro.rwmp.explain`).
        """
        from .rwmp.explain import explain_tree, render_explanation
        match = self._match_for(query_text)
        scorer = self.scorer_for(match)
        explanation = explain_tree(scorer, answer.tree)
        return render_explanation(self.graph, explanation)
