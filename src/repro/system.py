"""The end-to-end CI-Rank system facade.

:class:`CIRankSystem` wires the whole stack together: database -> data
graph (with entity merging) -> inverted index -> importance vector ->
optional star/pairs index -> per-query scorer and branch-and-bound
search.  It is the one-stop entry point the examples and the CLI use::

    from repro import CIRankSystem, generate_imdb

    system = CIRankSystem.from_database(generate_imdb(), merge_tables=(
        "actor", "actress", "director", "producer"))
    for answer in system.search("halloran winmont", k=5):
        print(system.describe(answer))
"""

from __future__ import annotations

import dataclasses
from typing import Dict, Iterable, List, Optional

import numpy as np

from .config import EdgeWeights, RWMPParams, SearchParams
from .db.database import Database
from .exceptions import ReproError
from .graph.builder import GraphBuilder
from .graph.datagraph import DataGraph
from .importance.feedback import FeedbackModel
from .importance.pagerank import ImportanceVector, pagerank
from .indexing.pairs import PairsIndex
from .indexing.star import StarIndex
from .model.answer import RankedAnswer
from .rwmp.dampening import DampeningModel
from .rwmp.scoring import RWMPScorer
from .search.branch_and_bound import BranchAndBoundSearch, SearchStats
from .search.naive import NaiveSearch
from .utils.lru import CacheStats
from .text.inverted_index import InvertedIndex
from .text.matcher import KeywordMatcher, MatchSets


class CIRankSystem:
    """A ready-to-query CI-Rank deployment over one database graph."""

    def __init__(
        self,
        graph: DataGraph,
        index: InvertedIndex,
        importance: ImportanceVector,
        params: Optional[RWMPParams] = None,
        search_params: Optional[SearchParams] = None,
    ) -> None:
        self.graph = graph
        self.index = index
        self.importance = importance
        self.params = params or RWMPParams()
        self.search_params = search_params or SearchParams()
        self.dampening = DampeningModel(self.importance, self.params)
        self.matcher = KeywordMatcher(index)
        self.graph_index: Optional[object] = None
        #: Observability of the most recent :meth:`search` call (the
        #: CLI's ``--stats`` flag reads these).
        self.last_search_stats: Optional[SearchStats] = None
        self.last_cache_stats: Optional[Dict[str, CacheStats]] = None

    # ------------------------------------------------------------ assembly

    @classmethod
    def from_database(
        cls,
        db: Database,
        merge_tables: Iterable[str] = (),
        weights: Optional[EdgeWeights] = None,
        params: Optional[RWMPParams] = None,
        search_params: Optional[SearchParams] = None,
        teleport_vector: Optional[np.ndarray] = None,
    ) -> "CIRankSystem":
        """Build the full stack from a database.

        Args:
            db: the source database.
            merge_tables: tables subject to entity merging (Section VI-A).
            weights: edge weight table (defaults to Table II).
            params: RWMP parameters.
            search_params: top-k search parameters.
            teleport_vector: optional biased teleport vector (user
                feedback, Section VI-A).
        """
        params = params or RWMPParams()
        graph = GraphBuilder(weights, merge_tables).build(db)
        index = InvertedIndex.build(graph)
        importance = pagerank(
            graph, teleport=params.teleport, teleport_vector=teleport_vector
        )
        return cls(graph, index, importance, params, search_params)

    @classmethod
    def from_csv_directory(
        cls,
        schema,
        directory,
        merge_tables: Iterable[str] = (),
        weights: Optional[EdgeWeights] = None,
        params: Optional[RWMPParams] = None,
        search_params: Optional[SearchParams] = None,
    ) -> "CIRankSystem":
        """Build the full stack from a CSV dump directory.

        See :func:`repro.db.load_csv_directory` for the expected layout
        (one ``<table>.csv`` per table plus an optional ``links.csv``).
        """
        from .db.csv_loader import load_csv_directory
        db = load_csv_directory(schema, directory)
        return cls.from_database(
            db, merge_tables=merge_tables, weights=weights,
            params=params, search_params=search_params,
        )

    def build_star_index(self, **kwargs) -> StarIndex:
        """Attach a star index (Section V-B) used by subsequent searches."""
        self.graph_index = StarIndex(self.graph, self.dampening, **kwargs)
        return self.graph_index

    def build_pairs_index(self, **kwargs) -> PairsIndex:
        """Attach the naive all-pairs index (Section V-A)."""
        self.graph_index = PairsIndex(self.graph, self.dampening, **kwargs)
        return self.graph_index

    def apply_feedback(self, feedback: FeedbackModel) -> None:
        """Re-rank importance under a feedback-biased teleport vector."""
        self.importance = pagerank(
            self.graph,
            teleport=self.params.teleport,
            teleport_vector=feedback.teleport_vector(),
        )
        self.dampening = DampeningModel(self.importance, self.params)
        if self.graph_index is not None:
            raise ReproError(
                "feedback changes dampening rates; rebuild the graph index "
                "(build_star_index / build_pairs_index) after apply_feedback"
            )

    # -------------------------------------------------------------- search

    def scorer_for(self, match: MatchSets) -> RWMPScorer:
        """The RWMP scorer for one query's match sets."""
        return RWMPScorer(self.graph, self.index, match, self.dampening)

    def search(
        self,
        query_text: str,
        k: Optional[int] = None,
        diameter: Optional[int] = None,
        algorithm: str = "branch-and-bound",
    ) -> List[RankedAnswer]:
        """Top-k keyword search.

        Args:
            query_text: whitespace-separated keywords (AND semantics).
            k: number of answers (defaults to the configured k).
            diameter: answer diameter cap (defaults to configured D).
            algorithm: ``"branch-and-bound"`` (default) or ``"naive"``.

        Returns:
            Ranked answers, best first (possibly fewer than k).
        """
        if algorithm not in ("branch-and-bound", "naive"):
            raise ReproError(f"unknown algorithm {algorithm!r}")
        self.last_search_stats = None
        self.last_cache_stats = None
        match = self.matcher.match(query_text)
        if self.search_params.semantics == "or":
            # OR needs only one matchable keyword
            if not any(match.per_keyword.values()):
                return []
        elif not match.matchable:
            return []
        # dataclasses.replace keeps every configured field (including any
        # added later) instead of re-listing them by hand.
        overrides = {}
        if k is not None:
            overrides["k"] = k
        if diameter is not None:
            overrides["diameter"] = diameter
        params = dataclasses.replace(self.search_params, **overrides)
        scorer = self.scorer_for(match)
        if algorithm == "branch-and-bound":
            search = BranchAndBoundSearch(
                self.graph, scorer, match, params, index=self.graph_index
            )
        else:
            search = NaiveSearch(self.graph, scorer, match, params)
        answers = search.run()
        self.last_search_stats = getattr(search, "stats", None)
        self.last_cache_stats = scorer.cache_stats()
        return answers

    # ------------------------------------------------------------- display

    def describe(self, answer: RankedAnswer) -> str:
        """One-line description of an answer."""
        return answer.describe(self.graph)

    def explain(self, query_text: str, answer: RankedAnswer) -> str:
        """The full message-flow breakdown of one answer's score.

        Renders per-source generation counts, per-hop splits/dampening,
        the binding (minimum) source at each keyword node, and the
        weakest link pulling the average down (see
        :mod:`repro.rwmp.explain`).
        """
        from .rwmp.explain import explain_tree, render_explanation
        match = self.matcher.match(query_text)
        scorer = self.scorer_for(match)
        explanation = explain_tree(scorer, answer.tree)
        return render_explanation(self.graph, explanation)
