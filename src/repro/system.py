"""The end-to-end CI-Rank system facade.

:class:`CIRankSystem` wires the whole stack together: database -> data
graph (with entity merging) -> inverted index -> importance vector ->
optional star/pairs index -> per-query scorer and branch-and-bound
search.  It is the one-stop entry point the examples and the CLI use::

    from repro import CIRankSystem, generate_imdb

    system = CIRankSystem.from_database(generate_imdb(), merge_tables=(
        "actor", "actress", "director", "producer"))
    for answer in system.search("halloran winmont", k=5):
        print(system.describe(answer))

Concurrency: :meth:`CIRankSystem.search` and
:meth:`CIRankSystem.search_anytime` are safe to call from multiple
threads against an *unchanging* graph — the shared mutable state on the
query path (the match-set memo and the cross-query answer cache) is
lock-guarded, per-query scorer/search state is thread-local, and the
remaining shared memos (dampening rates, compiled CSR) are idempotent
single-writes.  The observability attributes (``last_search_stats``,
``last_cache_stats``) are last-writer-wins; concurrent callers should
read per-request stats through the ``observer`` hook of
:meth:`search_anytime` instead.  Graph *mutations* are not synchronized
with in-flight searches — the serving daemon (:mod:`repro.serving`)
owns that discipline.
"""

from __future__ import annotations

import dataclasses
import threading
import time
from typing import Dict, Iterable, List, Optional

import numpy as np

from .config import EdgeWeights, RWMPParams, SearchParams
from .db.database import Database
from .exceptions import ReproError
from .graph.builder import GraphBuilder
from .graph.datagraph import DataGraph
from .importance.feedback import FeedbackModel
from .importance.pagerank import ImportanceVector, pagerank
from .indexing.pairs import PairsIndex
from .indexing.star import StarIndex
from .model.answer import RankedAnswer
from .rwmp.dampening import DampeningModel
from .rwmp.scoring import RWMPScorer
from .search.branch_and_bound import (
    AnytimeSnapshot,
    BranchAndBoundSearch,
    SearchStats,
)
from .search.naive import NaiveSearch
from .utils.lru import CacheStats, LRUCache
from .text.inverted_index import InvertedIndex
from .text.matcher import KeywordMatcher, MatchSets

#: Distinct (query, graph version) match sets kept hot per system.
MATCH_CACHE_SIZE = 256


def _finish_search_span(span, stats: "SearchStats", outcome: str) -> None:
    """Attach a run's full ``SearchStats`` to its trace span and close it.

    Every field of the stats dataclass — phase timers included — becomes
    a span attribute, so a slow-query dump answers "where did the time
    go" without a re-run.  No-op when tracing is off (``span is None``).
    """
    if span is None:
        return
    span.set_attribute("outcome", outcome)
    span.set_attributes(dataclasses.asdict(stats))
    span.finish()

#: Default capacity of the cross-query answer cache (proven top-k
#: results reused across repeated searches; 0 disables).
ANSWER_CACHE_SIZE = 256


class CIRankSystem:
    """A ready-to-query CI-Rank deployment over one database graph."""

    def __init__(
        self,
        graph: DataGraph,
        index: InvertedIndex,
        importance: ImportanceVector,
        params: Optional[RWMPParams] = None,
        search_params: Optional[SearchParams] = None,
        answer_cache_size: int = ANSWER_CACHE_SIZE,
    ) -> None:
        self.graph = graph
        self.index = index
        self.importance = importance
        self.params = params or RWMPParams()
        self.search_params = search_params or SearchParams()
        self.dampening = DampeningModel(self.importance, self.params)
        self.matcher = KeywordMatcher(index)
        self.graph_index: Optional[object] = None
        # Match-set lookups repeat verbatim across searches (pagination,
        # stats re-runs, benchmark loops); key on the graph version so a
        # mutation invalidates naturally.  The serving front end calls
        # :meth:`search`/:meth:`search_anytime` from a pool of executor
        # threads, and the LRU's recency moves are not atomic, so the
        # memo is guarded by a lock (the answer cache carries its own).
        self._match_cache = LRUCache(MATCH_CACHE_SIZE)
        self._match_lock = threading.Lock()
        # Cross-query cache of proven-optimal top-k results, versioned
        # by (graph version, ranking epoch) — see
        # repro.storage.answer_cache.  Local import: repro.storage pulls
        # in serialize, which imports this module.
        from .storage.answer_cache import AnswerCache
        self._answer_cache = AnswerCache(answer_cache_size)
        # Bumped whenever the ranking itself changes (feedback re-rank);
        # pairs with graph.version to guard cached answers.
        self._ranking_epoch = 0
        # Lazily-created sharded-search executor (partition memo plus
        # the optional persistent worker pool); see repro.search.sharded.
        self._sharded = None
        self._sharded_lock = threading.Lock()
        #: Execution mode of the sharded engine: "auto" (processes on
        #: multi-CPU hosts, inline otherwise), "inline", or "process".
        self.sharded_mode = "auto"
        #: Observability of the most recent :meth:`search` call (the
        #: CLI's ``--stats`` flag reads these).
        self.last_search_stats: Optional[SearchStats] = None
        self.last_cache_stats: Optional[Dict[str, CacheStats]] = None
        #: Counters of the most recent index build through
        #: :meth:`attach_index` (None when the index was warm-started).
        self.last_index_build = None
        #: Whether :meth:`attach_index` served the persisted index
        #: instead of rebuilding.
        self.index_warm_started = False

    @property
    def answer_cache(self):
        """The versioned cross-query answer cache (read-mostly accessor)."""
        return self._answer_cache

    # ------------------------------------------------------------ assembly

    @classmethod
    def from_database(
        cls,
        db: Database,
        merge_tables: Iterable[str] = (),
        weights: Optional[EdgeWeights] = None,
        params: Optional[RWMPParams] = None,
        search_params: Optional[SearchParams] = None,
        teleport_vector: Optional[np.ndarray] = None,
        index_kind: Optional[str] = None,
        index_path=None,
        index_workers: int = 1,
        answer_cache_size: int = ANSWER_CACHE_SIZE,
    ) -> "CIRankSystem":
        """Build the full stack from a database.

        Args:
            db: the source database.
            merge_tables: tables subject to entity merging (Section VI-A).
            weights: edge weight table (defaults to Table II).
            params: RWMP parameters.
            search_params: top-k search parameters.
            teleport_vector: optional biased teleport vector (user
                feedback, Section VI-A).
            index_kind: ``"star"`` or ``"pairs"`` to attach a graph
                index immediately (None leaves the system index-free).
            index_path: optional persistence directory for the index;
                a fresh one stored there warm-starts this deployment,
                and a rebuild (stale or absent) is saved back.
            index_workers: process count for index construction.
            answer_cache_size: capacity of the cross-query answer cache
                (0 disables it).
        """
        params = params or RWMPParams()
        graph = GraphBuilder(weights, merge_tables).build(db)
        index = InvertedIndex.build(graph)
        importance = pagerank(
            graph, teleport=params.teleport, teleport_vector=teleport_vector
        )
        system = cls(
            graph, index, importance, params, search_params,
            answer_cache_size=answer_cache_size,
        )
        if index_kind is not None:
            system.attach_index(
                index_kind, path=index_path, workers=index_workers
            )
        elif index_path is not None:
            raise ReproError(
                "index_path given without index_kind; pass "
                "index_kind='star' or 'pairs'"
            )
        return system

    @classmethod
    def from_csv_directory(
        cls,
        schema,
        directory,
        merge_tables: Iterable[str] = (),
        weights: Optional[EdgeWeights] = None,
        params: Optional[RWMPParams] = None,
        search_params: Optional[SearchParams] = None,
    ) -> "CIRankSystem":
        """Build the full stack from a CSV dump directory.

        See :func:`repro.db.load_csv_directory` for the expected layout
        (one ``<table>.csv`` per table plus an optional ``links.csv``).
        """
        from .db.csv_loader import load_csv_directory
        db = load_csv_directory(schema, directory)
        return cls.from_database(
            db, merge_tables=merge_tables, weights=weights,
            params=params, search_params=search_params,
        )

    def build_star_index(self, **kwargs) -> StarIndex:
        """Attach a star index (Section V-B) used by subsequent searches."""
        self.graph_index = StarIndex(self.graph, self.dampening, **kwargs)
        self.last_index_build = self.graph_index.build_stats
        self.index_warm_started = False
        return self.graph_index

    def build_pairs_index(self, **kwargs) -> PairsIndex:
        """Attach the naive all-pairs index (Section V-A)."""
        self.graph_index = PairsIndex(self.graph, self.dampening, **kwargs)
        self.last_index_build = self.graph_index.build_stats
        self.index_warm_started = False
        return self.graph_index

    def attach_index(self, kind: str, path=None, workers: int = 1, **kwargs):
        """Attach a graph index, warm-starting from ``path`` when possible.

        With ``path`` set, a fresh persisted index there is loaded
        instead of rebuilt (:attr:`index_warm_started` reports which
        happened); a stale or absent one triggers a kernel build whose
        result is saved back, so the *next* start is warm.  Without
        ``path`` this is a plain build.

        Args:
            kind: ``"star"`` or ``"pairs"``.
            path: optional index directory (see
                :mod:`repro.storage.index_store`).
            workers: process count for the kernel builder.
            **kwargs: forwarded to the index constructor on a rebuild
                (``horizon``, ``max_ball``, ``star_relations``...).

        Returns:
            The attached index.
        """
        if kind not in ("star", "pairs"):
            raise ReproError(f"unknown index kind {kind!r}")
        # Local import: repro.storage.serialize imports this module.
        from .exceptions import StaleIndexError
        from .storage.index_store import load_index, save_index
        if path is not None:
            try:
                self.graph_index = load_index(
                    path, self.graph, self.dampening, kind=kind
                )
                self.last_index_build = None
                self.index_warm_started = True
                return self.graph_index
            except StaleIndexError:
                pass  # rebuild and overwrite below
            except ReproError:
                pass  # nothing persisted yet; build and save below
        builder = (
            self.build_star_index if kind == "star" else
            self.build_pairs_index
        )
        index = builder(workers=workers, **kwargs)
        if path is not None:
            save_index(index, path)
        return index

    def apply_feedback(self, feedback: FeedbackModel) -> None:
        """Re-rank importance under a feedback-biased teleport vector."""
        self.importance = pagerank(
            self.graph,
            teleport=self.params.teleport,
            teleport_vector=feedback.teleport_vector(),
        )
        self.dampening = DampeningModel(self.importance, self.params)
        # Cached answers were proven under the old ranking; the epoch
        # bump invalidates them lazily at their next lookup.
        self._ranking_epoch += 1
        if self.graph_index is not None:
            raise ReproError(
                "feedback changes dampening rates; rebuild the graph index "
                "(build_star_index / build_pairs_index) after apply_feedback"
            )

    def apply_plan(self, plan) -> "CIRankSystem":
        """Adopt a planner recommendation (:mod:`repro.planner`).

        Accepts a :class:`~repro.planner.cost.PlanCandidate`, a
        :class:`~repro.planner.plan.PlanReport` (its chosen candidate is
        applied), or a plain dict in either shape (a serialized report
        is recognized by its ``chosen_config`` key).  Applies the search
        knobs (engine, shard count, diameter cap), resizes the answer
        cache when the capacity changed, and attaches or detaches the
        graph index to match the plan.  Returns ``self`` for chaining.

        Serving-side knobs (workers, batching) live on
        :class:`~repro.config.ServingParams`; the daemon applies those
        itself — see ``cirank serve --plan``.
        """
        # Local import: the planner imports config/obs, never this
        # module at import time, but keeping it lazy makes the facade
        # importable without the planner package in degraded trees.
        from .planner.cost import PlanCandidate
        from .planner.plan import PlanReport
        if isinstance(plan, PlanReport):
            candidate = plan.chosen_candidate
        elif isinstance(plan, PlanCandidate):
            candidate = plan
        elif isinstance(plan, dict):
            payload = plan.get("chosen_config", plan)
            candidate = PlanCandidate.from_dict(payload)
        else:
            raise ReproError(
                f"cannot apply a plan of type {type(plan).__name__}"
            )
        self.search_params = candidate.search_params(self.search_params)
        if candidate.answer_cache_size != self._answer_cache.stats().maxsize:
            from .storage.answer_cache import AnswerCache
            self._answer_cache = AnswerCache(candidate.answer_cache_size)
        if candidate.index_kind is None:
            self.graph_index = None
        elif self._index_fingerprint() != (
            {"star": "StarIndex", "pairs": "PairsIndex"}[
                candidate.index_kind
            ],
            candidate.index_horizon,
        ):
            self.attach_index(
                candidate.index_kind,
                workers=candidate.index_workers,
                horizon=candidate.index_horizon,
            )
        return self

    # ------------------------------------------------------------- sharded

    def _sharded_search(self, match: MatchSets, params: SearchParams, span=None):
        """A coordinator for one ``engine="sharded"`` query."""
        with self._sharded_lock:
            if self._sharded is None or self._sharded.mode != self.sharded_mode:
                from .search.sharded import ShardedExecutor
                previous = self._sharded
                self._sharded = ShardedExecutor(self, mode=self.sharded_mode)
                if previous is not None:
                    previous.close(timeout=5.0)
            executor = self._sharded
        return executor.search_for(match, params, span=span)

    def close_sharded(self, timeout: Optional[float] = None) -> bool:
        """Shut down the sharded executor's worker pool, if any.

        The serving daemon calls this during graceful drain with its
        ``drain_seconds`` budget; returns True when every shard worker
        joined within the budget (or none existed).
        """
        with self._sharded_lock:
            executor, self._sharded = self._sharded, None
        if executor is None:
            return True
        return executor.close(timeout=timeout)

    # -------------------------------------------------------------- search

    def scorer_for(self, match: MatchSets) -> RWMPScorer:
        """The RWMP scorer for one query's match sets."""
        return RWMPScorer(self.graph, self.index, match, self.dampening)

    def search(
        self,
        query_text: str,
        k: Optional[int] = None,
        diameter: Optional[int] = None,
        algorithm: str = "branch-and-bound",
        engine: Optional[str] = None,
        shards: Optional[int] = None,
    ) -> List[RankedAnswer]:
        """Top-k keyword search.

        Args:
            query_text: whitespace-separated keywords (AND semantics).
            k: number of answers (defaults to the configured k).
            diameter: answer diameter cap (defaults to configured D).
            algorithm: ``"branch-and-bound"`` (default) or ``"naive"``.
            engine: lazy-loop candidate representation — ``"arena"``
                (flat columnar arena), ``"object"`` (per-candidate
                trees), or ``"sharded"`` (star-cut partition searched
                per shard with bound-based early termination;
                :mod:`repro.search.sharded`); defaults to the
                configured engine.  All return identical top-k up to
                tie classes; the flag exists so a regression is one CLI
                switch away from bisection.
            shards: shard count for the sharded engine (defaults to the
                configured count; ignored by the other engines).

        Returns:
            Ranked answers, best first (possibly fewer than k).
        """
        if algorithm not in ("branch-and-bound", "naive"):
            raise ReproError(f"unknown algorithm {algorithm!r}")
        self.last_search_stats = None
        self.last_cache_stats = None
        match = self._match_for(query_text)
        if self.search_params.semantics == "or":
            # OR needs only one matchable keyword
            if not any(match.per_keyword.values()):
                return []
        elif not match.matchable:
            return []
        params = self._resolve_params(k, diameter, engine, shards)
        cache_key = None
        lookup_seconds = 0.0
        if algorithm == "branch-and-bound" and self._answer_cache.enabled:
            # Cross-query answer cache: key on the *analyzed* keywords
            # (two raw strings normalizing identically share an entry),
            # the resolved params, and the index provenance; the stored
            # (graph version, ranking epoch) guard is checked inside
            # lookup, which counts stale entries as invalidations.
            from .storage.answer_cache import answer_cache_key
            start = time.perf_counter()
            cache_key = answer_cache_key(
                tuple(match.keywords), params, self._index_fingerprint()
            )
            cached = self._answer_cache.lookup(
                cache_key, self.graph.version, self._ranking_epoch
            )
            lookup_seconds = time.perf_counter() - start
            if cached is not None:
                stats = SearchStats()
                stats.served_from_cache = True
                stats.cache_lookup_seconds = lookup_seconds
                stats.answers_found = len(cached)
                self.last_search_stats = stats
                self._publish_cache_stats()
                return cached
        scorer = self.scorer_for(match)
        if algorithm == "branch-and-bound":
            if params.engine == "sharded":
                search = self._sharded_search(match, params)
            else:
                search = BranchAndBoundSearch(
                    self.graph, scorer, match, params, index=self.graph_index
                )
        else:
            search = NaiveSearch(self.graph, scorer, match, params)
        answers = search.run()
        self.last_search_stats = getattr(search, "stats", None)
        if self.last_search_stats is not None:
            self.last_search_stats.cache_lookup_seconds += lookup_seconds
        if cache_key is not None and getattr(search, "last_proven", False):
            # Only proven-optimal results are reusable; anytime aborts
            # (max_candidates) carry no certificate.  Proven *empty*
            # results are cached too.
            self._answer_cache.store(
                cache_key, self.graph.version, self._ranking_epoch, answers
            )
        self._publish_cache_stats(scorer)
        return answers

    def search_anytime(
        self,
        query_text: str,
        k: Optional[int] = None,
        diameter: Optional[int] = None,
        engine: Optional[str] = None,
        shards: Optional[int] = None,
        heartbeat: int = 0,
        observer: Optional[object] = None,
        span: Optional[object] = None,
    ):
        """Anytime top-k search: a generator of :class:`AnytimeSnapshot`.

        The deadline-bounded serving path (:mod:`repro.serving.deadline`)
        drives this instead of :meth:`search`: each yielded snapshot
        carries the best answers so far plus the frontier bound, so a
        consumer can stop at any wall-clock deadline and report the
        snapshot's ``gap`` as the SLA field.  Fully consuming the
        generator is equivalent to :meth:`search` (branch-and-bound
        algorithm): the final snapshot holds the same answers, proven
        results enter the cross-query answer cache, and cache hits and
        unmatchable queries yield a single already-proven snapshot.

        Args:
            query_text: whitespace-separated keywords.
            k: number of answers (defaults to the configured k).
            diameter: answer diameter cap (defaults to configured D).
            engine: ``"arena"``, ``"object"``, or ``"sharded"``
                (defaults to configured).
            shards: shard count for the sharded engine (defaults to the
                configured count; ignored by the other engines).
            heartbeat: yield a snapshot every ``heartbeat`` queue pops
                even without top-k improvement (0 = improvements only);
                deadline consumers use this to bound overshoot.
            observer: optional mutable object; when given, its ``stats``
                attribute is set to the run's :class:`SearchStats` as
                soon as it exists.  Concurrent serving threads read
                per-request stats through this instead of the
                last-writer-wins :attr:`last_search_stats`.
            span: optional parent trace span
                (:class:`repro.obs.trace.Span`); a ``search`` child is
                opened under it and the run's :class:`SearchStats` —
                phase timers included — land on that child as
                attributes when the generator closes.
        """
        search_span = span.child("search") if span is not None else None
        params = self._resolve_params(k, diameter, engine, shards)
        match = self._match_for(query_text)
        if params.semantics == "or":
            matchable = any(match.per_keyword.values())
        else:
            matchable = match.matchable
        if not matchable:
            # Provably no answer exists: a single, already-final
            # snapshot (mirrors search() returning [] without probing
            # or populating the answer cache).
            stats = SearchStats()
            if observer is not None:
                observer.stats = stats
            self.last_search_stats = stats
            self._publish_cache_stats()
            _finish_search_span(search_span, stats, "unmatchable")
            yield AnytimeSnapshot(
                answers=[], frontier_bound=float("-inf"),
                proven_optimal=True,
            )
            return
        cache_key = None
        lookup_seconds = 0.0
        if self._answer_cache.enabled:
            from .storage.answer_cache import answer_cache_key
            start = time.perf_counter()
            cache_key = answer_cache_key(
                tuple(match.keywords), params, self._index_fingerprint()
            )
            cached = self._answer_cache.lookup(
                cache_key, self.graph.version, self._ranking_epoch
            )
            lookup_seconds = time.perf_counter() - start
            if cached is not None:
                stats = SearchStats()
                stats.served_from_cache = True
                stats.cache_lookup_seconds = lookup_seconds
                stats.answers_found = len(cached)
                if observer is not None:
                    observer.stats = stats
                self.last_search_stats = stats
                self._publish_cache_stats()
                _finish_search_span(search_span, stats, "cache_hit")
                yield AnytimeSnapshot(
                    answers=cached, frontier_bound=float("-inf"),
                    proven_optimal=True,
                )
                return
        scorer = self.scorer_for(match)
        if params.engine == "sharded":
            search = self._sharded_search(match, params, span=search_span)
        else:
            search = BranchAndBoundSearch(
                self.graph, scorer, match, params, index=self.graph_index
            )
        if observer is not None:
            observer.stats = search.stats
        # The versions the result would be proven against — captured
        # before the search so a concurrent mutation can only make the
        # stored guard *stale* (invalidated at next lookup), never wrong.
        version = self.graph.version
        epoch = self._ranking_epoch
        try:
            for snapshot in search.snapshots(heartbeat=heartbeat):
                if (
                    snapshot.proven_optimal
                    and search.last_proven
                    and cache_key is not None
                ):
                    self._answer_cache.store(
                        cache_key, version, epoch, list(snapshot.answers)
                    )
                yield snapshot
        finally:
            # Runs both on normal exhaustion and when a deadline-bounded
            # consumer abandons the generator mid-search.
            search.stats.cache_lookup_seconds += lookup_seconds
            self.last_search_stats = search.stats
            self._publish_cache_stats(scorer)
            _finish_search_span(search_span, search.stats, "search")

    def answer_key(
        self,
        query_text: str,
        k: Optional[int] = None,
        diameter: Optional[int] = None,
        engine: Optional[str] = None,
    ):
        """The canonical answer-cache key for one search invocation.

        Two raw query strings that analyze to the same keyword sequence
        under the same resolved parameters and index provenance share a
        key; the serving front end uses it for single-flight dedup of
        identical in-flight queries.
        """
        from .storage.answer_cache import answer_cache_key
        match = self._match_for(query_text)
        params = self._resolve_params(k, diameter, engine)
        return answer_cache_key(
            tuple(match.keywords), params, self._index_fingerprint()
        )

    def _resolve_params(
        self,
        k: Optional[int],
        diameter: Optional[int],
        engine: Optional[str],
        shards: Optional[int] = None,
    ) -> SearchParams:
        """The configured SearchParams with per-call overrides applied.

        ``dataclasses.replace`` keeps every configured field (including
        any added later) instead of re-listing them by hand.
        """
        overrides = {}
        if k is not None:
            overrides["k"] = k
        if diameter is not None:
            overrides["diameter"] = diameter
        if engine is not None:
            overrides["engine"] = engine
        if shards is not None:
            overrides["shards"] = shards
        return dataclasses.replace(self.search_params, **overrides)

    def _index_fingerprint(self):
        """Structural identity of the attached graph index (or None)."""
        index = self.graph_index
        if index is None:
            return None
        return (type(index).__name__, getattr(index, "horizon", None))

    def _publish_cache_stats(self, scorer: Optional[RWMPScorer] = None):
        """Refresh :attr:`last_cache_stats` after a search."""
        stats: Dict[str, CacheStats] = (
            dict(scorer.cache_stats()) if scorer is not None else {}
        )
        stats["match"] = self._match_cache.stats()
        stats["answers"] = self._answer_cache.stats()
        self.last_cache_stats = stats

    def _match_for(self, query_text: str) -> MatchSets:
        """Match sets for a query, memoized per (query, graph version).

        Thread-safe: concurrent searches from the serving executor pool
        share the memo, and the lock covers the whole get-compute-put
        sequence (matching is cheap — inverted-index lookups — so
        serializing it is preferable to racing duplicate inserts).
        """
        key = (query_text, self.graph.version)
        with self._match_lock:
            match = self._match_cache.get(key)
            if match is None:
                match = self.matcher.match(query_text)
                self._match_cache.put(key, match)
            return match

    # ------------------------------------------------------------- display

    def describe(self, answer: RankedAnswer) -> str:
        """One-line description of an answer."""
        return answer.describe(self.graph)

    def explain(self, query_text: str, answer: RankedAnswer) -> str:
        """The full message-flow breakdown of one answer's score.

        Renders per-source generation counts, per-hop splits/dampening,
        the binding (minimum) source at each keyword node, and the
        weakest link pulling the average down (see
        :mod:`repro.rwmp.explain`).
        """
        from .rwmp.explain import explain_tree, render_explanation
        match = self._match_for(query_text)
        scorer = self.scorer_for(match)
        explanation = explain_tree(scorer, answer.tree)
        return render_explanation(self.graph, explanation)
