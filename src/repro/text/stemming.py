"""The Porter stemming algorithm (Porter, 1980), from scratch.

An optional analyzer stage: with stemming on, "integration" and
"integrating" match the keyword "integrate" — the behavior Lucene's
analyzers (the original system's text layer) provide via PorterStemFilter.

This is the classic five-step algorithm.  The implementation follows the
original paper's rules, including the m (measure) condition, *S/*v*/*d/*o
conditions, and the step ordering; ``tests/test_stemming.py`` pins the
published example vocabulary.
"""

from __future__ import annotations

_VOWELS = set("aeiou")


def _is_consonant(word: str, i: int) -> bool:
    ch = word[i]
    if ch in _VOWELS:
        return False
    if ch == "y":
        return i == 0 or not _is_consonant(word, i - 1)
    return True


def _measure(stem: str) -> int:
    """The number of VC sequences (the 'm' of the paper)."""
    m = 0
    previous_vowel = False
    for i in range(len(stem)):
        consonant = _is_consonant(stem, i)
        if consonant and previous_vowel:
            m += 1
        previous_vowel = not consonant
    return m


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(stem: str) -> bool:
    return (
        len(stem) >= 2
        and stem[-1] == stem[-2]
        and _is_consonant(stem, len(stem) - 1)
    )


def _ends_cvc(stem: str) -> bool:
    """*o: ends consonant-vowel-consonant, last not w, x, or y."""
    if len(stem) < 3:
        return False
    return (
        _is_consonant(stem, len(stem) - 3)
        and not _is_consonant(stem, len(stem) - 2)
        and _is_consonant(stem, len(stem) - 1)
        and stem[-1] not in "wxy"
    )


def _replace(word: str, suffix: str, replacement: str, m_min: int) -> str:
    stem = word[: len(word) - len(suffix)]
    if _measure(stem) > m_min:
        return stem + replacement
    return word


def porter_stem(word: str) -> str:
    """Stem one lowercase word."""
    if len(word) <= 2:
        return word
    word = _step_1a(word)
    word = _step_1b(word)
    word = _step_1c(word)
    word = _step_2(word)
    word = _step_3(word)
    word = _step_4(word)
    word = _step_5(word)
    return word


def _step_1a(word: str) -> str:
    if word.endswith("sses"):
        return word[:-2]
    if word.endswith("ies"):
        return word[:-2]
    if word.endswith("ss"):
        return word
    if word.endswith("s"):
        return word[:-1]
    return word


def _step_1b(word: str) -> str:
    if word.endswith("eed"):
        stem = word[:-3]
        if _measure(stem) > 0:
            return word[:-1]
        return word
    flag = False
    if word.endswith("ed") and _contains_vowel(word[:-2]):
        word = word[:-2]
        flag = True
    elif word.endswith("ing") and _contains_vowel(word[:-3]):
        word = word[:-3]
        flag = True
    if flag:
        if word.endswith(("at", "bl", "iz")):
            return word + "e"
        if _ends_double_consonant(word) and not word.endswith(("l", "s", "z")):
            return word[:-1]
        if _measure(word) == 1 and _ends_cvc(word):
            return word + "e"
    return word


def _step_1c(word: str) -> str:
    if word.endswith("y") and _contains_vowel(word[:-1]):
        return word[:-1] + "i"
    return word


_STEP2_RULES = (
    ("ational", "ate"), ("tional", "tion"), ("enci", "ence"),
    ("anci", "ance"), ("izer", "ize"), ("abli", "able"),
    ("alli", "al"), ("entli", "ent"), ("eli", "e"), ("ousli", "ous"),
    ("ization", "ize"), ("ation", "ate"), ("ator", "ate"),
    ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
    ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"),
    ("biliti", "ble"),
)

_STEP3_RULES = (
    ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
    ("ical", "ic"), ("ful", ""), ("ness", ""),
)

_STEP4_SUFFIXES = (
    "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
    "ment", "ent", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
)


def _step_2(word: str) -> str:
    for suffix, replacement in _STEP2_RULES:
        if word.endswith(suffix):
            return _replace(word, suffix, replacement, 0)
    return word


def _step_3(word: str) -> str:
    for suffix, replacement in _STEP3_RULES:
        if word.endswith(suffix):
            return _replace(word, suffix, replacement, 0)
    return word


def _step_4(word: str) -> str:
    for suffix in _STEP4_SUFFIXES:
        if word.endswith(suffix):
            stem = word[: len(word) - len(suffix)]
            if _measure(stem) > 1:
                return stem
            return word
    # "ion" strips only after s or t (*S or *T condition)
    if word.endswith("ion") and word[-4:-3] in ("s", "t"):
        stem = word[:-3]
        if _measure(stem) > 1:
            return stem
    return word


def _step_5(word: str) -> str:
    # step 5a
    if word.endswith("e"):
        stem = word[:-1]
        m = _measure(stem)
        if m > 1 or (m == 1 and not _ends_cvc(stem)):
            word = stem
    # step 5b
    if (
        _measure(word) > 1
        and _ends_double_consonant(word)
        and word.endswith("l")
    ):
        word = word[:-1]
    return word
