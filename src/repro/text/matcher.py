"""Keyword matching: computing the non-free node sets of Definition 2.

Given a query ``Q = {k_1, ..., k_|Q|}``, :class:`KeywordMatcher` returns,
per keyword, the non-free node set ``En(k_i)`` (nodes whose text contains
the keyword) and the union ``En(Q)``.  The complement — the free node set
``Ef(Q)`` — is never materialized (it is almost the whole graph); callers
test membership via :meth:`MatchSets.is_free`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Set

from ..exceptions import EvaluationError
from .inverted_index import InvertedIndex


@dataclass
class MatchSets:
    """Match information for one query.

    Attributes:
        keywords: the analyzed query keywords, in query order.
        per_keyword: keyword -> ``En(k)`` node set.
        all_nodes: ``En(Q)`` — union of the per-keyword sets.
        keywords_of: node -> frozenset of the keywords it contains.
    """

    keywords: List[str]
    per_keyword: Dict[str, Set[int]]
    all_nodes: Set[int] = field(default_factory=set)
    keywords_of: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.all_nodes:
            for nodes in self.per_keyword.values():
                self.all_nodes |= nodes
        if not self.keywords_of:
            per_node: Dict[int, Set[str]] = {}
            for keyword, nodes in self.per_keyword.items():
                for node in nodes:
                    per_node.setdefault(node, set()).add(keyword)
            self.keywords_of = {
                node: frozenset(kws) for node, kws in per_node.items()
            }

    def is_free(self, node: int) -> bool:
        """Whether ``node`` contains no query keyword (Definition 2)."""
        return node not in self.all_nodes

    def covered_by(self, nodes) -> FrozenSet[str]:
        """Keywords covered by a collection of nodes."""
        covered: Set[str] = set()
        for node in nodes:
            covered |= self.keywords_of.get(node, frozenset())
        return frozenset(covered)

    @property
    def matchable(self) -> bool:
        """True when every keyword matches at least one node."""
        return all(self.per_keyword.get(k) for k in self.keywords)


class KeywordMatcher:
    """Resolves query keywords to non-free node sets via the index."""

    def __init__(self, index: InvertedIndex) -> None:
        self.index = index

    def match(self, query_text: str) -> MatchSets:
        """Analyze ``query_text`` and compute its match sets.

        Raises:
            EvaluationError: if the query analyzes to zero keywords.
        """
        keywords = self.index.analyzer.analyze_query(query_text)
        if not keywords:
            raise EvaluationError(
                f"query {query_text!r} contains no searchable keywords"
            )
        per_keyword = {k: self.index.matching_nodes(k) for k in keywords}
        return MatchSets(keywords, per_keyword)
