"""Text analysis: lowercasing, tokenization, optional stopword removal.

Keyword queries and node texts go through the same :class:`Analyzer`, so a
keyword matches a node exactly when the analyzed token appears in the
node's analyzed token list — the substrate equivalent of Lucene's analyzer
pipeline.
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterable, List, Optional

_TOKEN_RE = re.compile(r"[a-z0-9]+")

#: A minimal English stopword list; ranking papers in this line of work
#: (DISCOVER, SPARK) strip only the most frequent function words.
DEFAULT_STOPWORDS: FrozenSet[str] = frozenset(
    """a an and are as at be by for from has in is it of on or the to with""".split()
)


def tokenize(text: str) -> List[str]:
    """Lowercase alphanumeric tokenization (no stopword removal)."""
    return _TOKEN_RE.findall(text.lower())


class Analyzer:
    """Configurable analysis pipeline.

    Args:
        stopwords: tokens to drop; pass ``frozenset()`` to keep everything.
        min_length: tokens shorter than this are dropped.
        stemming: apply the Porter stemmer after stopword removal, so
            morphological variants match (Lucene's PorterStemFilter
            equivalent).
    """

    def __init__(
        self,
        stopwords: Optional[Iterable[str]] = DEFAULT_STOPWORDS,
        min_length: int = 1,
        stemming: bool = False,
    ) -> None:
        self.stopwords = frozenset(stopwords or ())
        self.min_length = max(1, min_length)
        self.stemming = stemming

    def analyze(self, text: str) -> List[str]:
        """Analyzed token list of ``text`` (duplicates preserved)."""
        tokens = [
            token
            for token in tokenize(text)
            if len(token) >= self.min_length and token not in self.stopwords
        ]
        if self.stemming:
            from .stemming import porter_stem
            tokens = [porter_stem(token) for token in tokens]
        return tokens

    def analyze_query(self, text: str) -> List[str]:
        """Analyzed, de-duplicated keyword list of a query string.

        Order of first occurrence is preserved so that query keyword
        positions remain stable for reporting.
        """
        seen = set()
        out: List[str] = []
        for token in self.analyze(text):
            if token not in seen:
                seen.add(token)
                out.append(token)
        return out
