"""Full-text substrate: tokenization, inverted index, keyword matching.

This package replaces Apache Lucene in the original system.  It provides
exactly what the ranking functions need: term postings with term
frequencies, document frequencies, document lengths, and per-relation
statistics for the IR-style baselines.
"""

from .analyzer import Analyzer, tokenize
from .inverted_index import InvertedIndex, Posting, RelationStats
from .matcher import KeywordMatcher, MatchSets

__all__ = [
    "Analyzer",
    "tokenize",
    "InvertedIndex",
    "Posting",
    "RelationStats",
    "KeywordMatcher",
    "MatchSets",
]
