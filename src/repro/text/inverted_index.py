"""Inverted index over data-graph nodes.

Stores, per term, the posting list of (node, term frequency) pairs, and,
per relation, the statistics the IR-style scoring functions consume:
number of tuples ``N_Rel``, per-term document frequency ``df_k(Rel)``,
and average text length ``avdl``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set

from ..exceptions import ReproError
from ..graph.datagraph import DataGraph
from .analyzer import Analyzer


@dataclass(frozen=True)
class Posting:
    """One posting: a node and the term's frequency in its text."""

    node: int
    tf: int


@dataclass
class RelationStats:
    """Per-relation statistics for IR scoring.

    Attributes:
        tuples: number of nodes of the relation (N_Rel).
        total_length: summed analyzed token count.
        df: term -> number of the relation's nodes containing the term.
    """

    tuples: int = 0
    total_length: int = 0
    df: Dict[str, int] = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.df is None:
            self.df = {}

    @property
    def avdl(self) -> float:
        """Average document (node text) length; 1.0 for empty relations."""
        if self.tuples == 0 or self.total_length == 0:
            return 1.0
        return self.total_length / self.tuples


class InvertedIndex:
    """Term -> postings index over the nodes of a :class:`DataGraph`."""

    def __init__(self, analyzer: Optional[Analyzer] = None) -> None:
        self.analyzer = analyzer or Analyzer()
        self._postings: Dict[str, List[Posting]] = {}
        self._doc_length: Dict[int, int] = {}
        self._node_terms: Dict[int, Dict[str, int]] = {}
        self._relation_of: Dict[int, str] = {}
        self._stats: Dict[str, RelationStats] = {}
        self._built = False

    @classmethod
    def build(cls, graph: DataGraph, analyzer: Optional[Analyzer] = None) -> "InvertedIndex":
        """Index every node of ``graph``."""
        index = cls(analyzer)
        for node in graph.nodes():
            info = graph.info(node)
            index.add_document(node, info.relation, info.text)
        index._built = True
        return index

    def add_document(self, node: int, relation: str, text: str) -> None:
        """Index one node's text under the given relation."""
        tokens = self.analyzer.analyze(text)
        counts: Dict[str, int] = {}
        for token in tokens:
            counts[token] = counts.get(token, 0) + 1
        self._doc_length[node] = len(tokens)
        self._node_terms[node] = counts
        self._relation_of[node] = relation
        stats = self._stats.setdefault(relation, RelationStats())
        stats.tuples += 1
        stats.total_length += len(tokens)
        for term, tf in counts.items():
            self._postings.setdefault(term, []).append(Posting(node, tf))
            stats.df[term] = stats.df.get(term, 0) + 1

    # ------------------------------------------------------------- lookups

    def postings(self, term: str) -> List[Posting]:
        """Posting list of an (already analyzed) term; empty if unseen."""
        return self._postings.get(term, [])

    def matching_nodes(self, term: str) -> Set[int]:
        """Node ids whose text contains ``term``."""
        return {p.node for p in self._postings.get(term, ())}

    def tf(self, term: str, node: int) -> int:
        """Frequency of ``term`` in ``node`` (0 if absent)."""
        return self._node_terms.get(node, {}).get(term, 0)

    def doc_length(self, node: int) -> int:
        """Analyzed token count of ``node`` (dl_v)."""
        return self._doc_length.get(node, 0)

    def node_terms(self, node: int) -> Dict[str, int]:
        """All terms of ``node`` with frequencies (do not mutate)."""
        return self._node_terms.get(node, {})

    def relation_stats(self, relation: str) -> RelationStats:
        """Statistics for ``relation`` (empty stats if unindexed)."""
        return self._stats.get(relation, RelationStats())

    def relation_of(self, node: int) -> str:
        """Relation an indexed node belongs to."""
        try:
            return self._relation_of[node]
        except KeyError:
            raise ReproError(f"node {node} is not indexed") from None

    def vocabulary(self) -> Iterator[str]:
        """Iterate over indexed terms."""
        return iter(self._postings)

    def __len__(self) -> int:
        return len(self._doc_length)
