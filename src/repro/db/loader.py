"""Bulk loading of plain-dict records into a :class:`Database`.

The synthetic dataset generators and the examples both produce data as
plain dictionaries; :func:`load_records` turns such a description into a
validated database in one call.

Record format::

    {
        "rows": {
            "movie": [{"pk": 1, "title": "Braveheart", "year": 1995}, ...],
            "actor": [{"pk": 1, "name": "Mel Gibson"}, ...],
        },
        "links": [
            {"link": "acts_in", "a": 1, "b": 1},
            ...
        ],
    }
"""

from __future__ import annotations

from typing import Any, Iterable, List, Mapping

from ..exceptions import DatasetError
from .database import Database
from .schema import Schema


def load_records(schema: Schema, records: Mapping[str, Any]) -> Database:
    """Build a :class:`Database` from a plain-dict description.

    Tables are loaded in an order that satisfies FK dependencies (referenced
    tables first); a cyclic FK dependency between tables raises
    :class:`DatasetError`.

    Args:
        schema: the schema the records must conform to.
        records: a mapping with ``"rows"`` (table -> list of row dicts, each
            holding ``"pk"`` plus column values) and optional ``"links"``
            (list of ``{"link", "a", "b"}`` dicts).

    Returns:
        A fully loaded, validated database.
    """
    rows = records.get("rows", {})
    links = records.get("links", [])
    unknown = [t for t in rows if t.lower() not in schema]
    if unknown:
        raise DatasetError(f"records reference unknown tables: {unknown}")

    db = Database(schema)
    for table in _load_order(schema, rows.keys()):
        for record in rows.get(table, rows.get(table.lower(), [])):
            payload = dict(record)
            try:
                pk = payload.pop("pk")
            except KeyError:
                raise DatasetError(
                    f"row in table {table!r} missing 'pk': {record!r}"
                ) from None
            db.insert(table, pk, **payload)
    for entry in links:
        try:
            db.link(entry["link"], entry["a"], entry["b"])
        except KeyError:
            raise DatasetError(f"malformed link record: {entry!r}") from None
    db.validate()
    return db


def _load_order(schema: Schema, tables: Iterable[str]) -> List[str]:
    """Topologically order ``tables`` so FK targets load first."""
    wanted = {t.lower(): t for t in tables}
    order: List[str] = []
    placed: set = set()
    # Kahn's algorithm over the FK dependency graph restricted to `wanted`.
    remaining = set(wanted)
    while remaining:
        progressed = False
        for name in sorted(remaining):
            tdef = schema.table(name)
            deps = {
                fk.references.lower()
                for fk in tdef.foreign_keys.values()
                if fk.references.lower() in wanted
                and fk.references.lower() != name
            }
            if deps <= placed:
                order.append(wanted[name])
                placed.add(name)
                remaining.discard(name)
                progressed = True
        if not progressed:
            raise DatasetError(
                f"cyclic FK dependency among tables: {sorted(remaining)}"
            )
    return order
