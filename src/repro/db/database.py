"""Tuple storage with integrity checking.

A :class:`Database` holds rows (:class:`Row`) per table plus the m:n link
instances.  It enforces the constraints the graph builder relies on:
primary-key uniqueness, foreign-key referential integrity, and link
endpoint validity.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional, Set, Tuple

from ..exceptions import IntegrityError, SchemaError
from .schema import Schema, Table, INTEGER, FLOAT, TEXT


@dataclass
class Row:
    """One stored tuple.

    Attributes:
        table: owning table name.
        pk: primary key value (int).
        values: column name -> value.
    """

    table: str
    pk: int
    values: Dict[str, Any] = field(default_factory=dict)

    def text(self, columns: Iterable[str]) -> str:
        """Concatenated text of the given columns (for keyword matching)."""
        parts = []
        for name in columns:
            value = self.values.get(name)
            if value is not None:
                parts.append(str(value))
        return " ".join(parts)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Row({self.table}:{self.pk} {self.values})"


#: A link instance: (link name, pk on table_a side, pk on table_b side).
LinkInstance = Tuple[str, int, int]


class Database:
    """In-memory tuple store validated against a :class:`Schema`."""

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self._rows: Dict[str, Dict[int, Row]] = {t.name: {} for t in schema}
        self._links: List[LinkInstance] = []
        self._link_seen: Set[LinkInstance] = set()

    # ------------------------------------------------------------------ rows

    def insert(self, table: str, pk: int, **values: Any) -> Row:
        """Insert a tuple.

        Raises:
            IntegrityError: on duplicate PK, unknown column, type mismatch,
                or dangling foreign key.
        """
        tdef = self.schema.table(table)
        store = self._rows[tdef.name]
        if pk in store:
            raise IntegrityError(f"duplicate primary key {tdef.name}:{pk}")
        clean: Dict[str, Any] = {}
        for name, value in values.items():
            if name in tdef.columns:
                clean[name] = self._coerce(tdef, name, value)
            elif any(fk.column == name for fk in tdef.foreign_keys.values()):
                clean[name] = value
            else:
                raise IntegrityError(
                    f"unknown column {name!r} for table {tdef.name!r}"
                )
        for fk in tdef.foreign_keys.values():
            ref = clean.get(fk.column)
            if ref is None:
                if not fk.nullable:
                    raise IntegrityError(
                        f"{tdef.name}:{pk} missing non-nullable FK {fk.name!r}"
                    )
                continue
            if ref not in self._rows[fk.references.lower()]:
                raise IntegrityError(
                    f"{tdef.name}:{pk} FK {fk.name!r} dangles "
                    f"({fk.references}:{ref} does not exist)"
                )
        row = Row(tdef.name, pk, clean)
        store[pk] = row
        return row

    @staticmethod
    def _coerce(tdef: Table, name: str, value: Any) -> Any:
        column = tdef.columns[name]
        if value is None:
            return None
        if column.type == INTEGER and not isinstance(value, bool):
            try:
                return int(value)
            except (TypeError, ValueError):
                raise IntegrityError(
                    f"column {tdef.name}.{name} expects integer, got {value!r}"
                ) from None
        if column.type == FLOAT:
            try:
                return float(value)
            except (TypeError, ValueError):
                raise IntegrityError(
                    f"column {tdef.name}.{name} expects float, got {value!r}"
                ) from None
        if column.type == TEXT:
            return str(value)
        return value

    def get(self, table: str, pk: int) -> Row:
        """Fetch a row; raises :class:`IntegrityError` if absent."""
        tdef = self.schema.table(table)
        try:
            return self._rows[tdef.name][pk]
        except KeyError:
            raise IntegrityError(f"no such row {tdef.name}:{pk}") from None

    def rows(self, table: str) -> Iterator[Row]:
        """Iterate over the rows of one table in insertion order."""
        tdef = self.schema.table(table)
        return iter(self._rows[tdef.name].values())

    def count(self, table: str) -> int:
        """Number of rows in ``table``."""
        return len(self._rows[self.schema.table(table).name])

    def __len__(self) -> int:
        return sum(len(store) for store in self._rows.values())

    # ----------------------------------------------------------------- links

    def link(self, name: str, pk_a: int, pk_b: int) -> None:
        """Record an m:n link instance.

        Duplicate links are ignored (the relationship is a set).

        Raises:
            SchemaError: unknown link name.
            IntegrityError: either endpoint does not exist, or a self-link
                joins a row to itself.
        """
        if name not in self.schema.many_to_many:
            raise SchemaError(f"unknown m:n link {name!r}")
        m2m = self.schema.many_to_many[name]
        if pk_a not in self._rows[m2m.table_a.lower()]:
            raise IntegrityError(
                f"link {name!r}: missing {m2m.table_a}:{pk_a}"
            )
        if pk_b not in self._rows[m2m.table_b.lower()]:
            raise IntegrityError(
                f"link {name!r}: missing {m2m.table_b}:{pk_b}"
            )
        if m2m.table_a.lower() == m2m.table_b.lower() and pk_a == pk_b:
            raise IntegrityError(f"link {name!r}: self-loop {pk_a}")
        instance = (name, pk_a, pk_b)
        if instance in self._link_seen:
            return
        self._link_seen.add(instance)
        self._links.append(instance)

    def links(self, name: Optional[str] = None) -> Iterator[LinkInstance]:
        """Iterate over link instances, optionally filtered by link name."""
        if name is not None and name not in self.schema.many_to_many:
            raise SchemaError(f"unknown m:n link {name!r}")
        for instance in self._links:
            if name is None or instance[0] == name:
                yield instance

    def link_count(self, name: Optional[str] = None) -> int:
        """Number of link instances (optionally of one link type)."""
        return sum(1 for _ in self.links(name))

    # ------------------------------------------------------------- integrity

    def validate(self) -> None:
        """Re-check referential integrity of the whole store.

        Useful after bulk loading; raises on the first violation.
        """
        for tdef in self.schema:
            for row in self._rows[tdef.name].values():
                for fk in tdef.foreign_keys.values():
                    ref = row.values.get(fk.column)
                    if ref is None:
                        if not fk.nullable:
                            raise IntegrityError(
                                f"{tdef.name}:{row.pk} missing FK {fk.name!r}"
                            )
                        continue
                    if ref not in self._rows[fk.references.lower()]:
                        raise IntegrityError(
                            f"{tdef.name}:{row.pk} FK {fk.name!r} dangles"
                        )
        for name, pk_a, pk_b in self._links:
            m2m = self.schema.many_to_many[name]
            if (pk_a not in self._rows[m2m.table_a.lower()]
                    or pk_b not in self._rows[m2m.table_b.lower()]):
                raise IntegrityError(f"dangling link {name}:{pk_a}-{pk_b}")
