"""Schema definitions: columns, tables, foreign keys.

A :class:`Schema` is a named collection of :class:`Table` objects.  Each
table has a single-column integer primary key (sufficient for the paper's
datasets) and any number of text or numeric columns.  Foreign keys are
declared per table and name the referenced table; self-references (paper
citations) are allowed and distinguished by the foreign-key *name*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Tuple

from ..exceptions import SchemaError

#: Column types understood by the substrate.
TEXT = "text"
INTEGER = "integer"
FLOAT = "float"

_VALID_TYPES = (TEXT, INTEGER, FLOAT)


@dataclass(frozen=True)
class Column:
    """A table column.

    Attributes:
        name: column name (unique within its table).
        type: one of ``"text"``, ``"integer"``, ``"float"``.
        searchable: whether keyword matching considers this column's text.
    """

    name: str
    type: str = TEXT
    searchable: bool = True

    def __post_init__(self) -> None:
        if not self.name:
            raise SchemaError("column name must be non-empty")
        if self.type not in _VALID_TYPES:
            raise SchemaError(f"unknown column type {self.type!r}")


@dataclass(frozen=True)
class ForeignKey:
    """A foreign-key declaration.

    Attributes:
        name: link name (e.g. ``"cites"``); unique within the owning table.
        column: the column on the owning table holding the referenced key.
        references: the referenced table name.
        nullable: whether the column may be None (no link).
    """

    name: str
    column: str
    references: str
    nullable: bool = True

    def __post_init__(self) -> None:
        if not self.name or not self.column or not self.references:
            raise SchemaError("foreign key fields must be non-empty")


@dataclass(frozen=True)
class ManyToMany:
    """An m:n relationship between two tables.

    Relationally this would be a junction table; at the graph level (which
    is all the paper uses) each link instance simply yields a pair of
    directed edges, so the substrate stores link instances directly (see
    :meth:`repro.db.Database.link`).

    Attributes:
        name: link name, unique within the schema (e.g. ``"cites"``).
        table_a: the "owning"/source side (citing paper, actor...).
        table_b: the target side (cited paper, movie...).
    """

    name: str
    table_a: str
    table_b: str

    def __post_init__(self) -> None:
        if not self.name or not self.table_a or not self.table_b:
            raise SchemaError("many-to-many fields must be non-empty")


class Table:
    """A table definition: primary key, columns, and foreign keys."""

    def __init__(
        self,
        name: str,
        columns: Iterable[Column],
        foreign_keys: Iterable[ForeignKey] = (),
        primary_key: str = "id",
    ) -> None:
        if not name:
            raise SchemaError("table name must be non-empty")
        self.name = name.lower()
        self.primary_key = primary_key
        self.columns: Dict[str, Column] = {}
        for column in columns:
            if column.name in self.columns:
                raise SchemaError(
                    f"duplicate column {column.name!r} in table {name!r}"
                )
            self.columns[column.name] = column
        self.foreign_keys: Dict[str, ForeignKey] = {}
        for fk in foreign_keys:
            if fk.name in self.foreign_keys:
                raise SchemaError(
                    f"duplicate foreign key {fk.name!r} in table {name!r}"
                )
            if fk.column == primary_key:
                raise SchemaError(
                    f"foreign key {fk.name!r} cannot reuse the primary key column"
                )
            self.foreign_keys[fk.name] = fk

    @property
    def searchable_columns(self) -> List[str]:
        """Names of the columns keyword matching looks at, in order."""
        return [
            c.name
            for c in self.columns.values()
            if c.searchable and c.type == TEXT
        ]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Table({self.name!r}, columns={list(self.columns)})"


class Schema:
    """A collection of tables and m:n links with validated references."""

    def __init__(
        self,
        tables: Iterable[Table],
        many_to_many: Iterable[ManyToMany] = (),
    ) -> None:
        self.tables: Dict[str, Table] = {}
        for table in tables:
            if table.name in self.tables:
                raise SchemaError(f"duplicate table {table.name!r}")
            self.tables[table.name] = table
        for table in self.tables.values():
            for fk in table.foreign_keys.values():
                if fk.references.lower() not in self.tables:
                    raise SchemaError(
                        f"table {table.name!r} references unknown table "
                        f"{fk.references!r}"
                    )
        self.many_to_many: Dict[str, ManyToMany] = {}
        for m2m in many_to_many:
            if m2m.name in self.many_to_many:
                raise SchemaError(f"duplicate m:n link {m2m.name!r}")
            for side in (m2m.table_a, m2m.table_b):
                if side.lower() not in self.tables:
                    raise SchemaError(
                        f"m:n link {m2m.name!r} references unknown table "
                        f"{side!r}"
                    )
            self.many_to_many[m2m.name] = m2m

    def table(self, name: str) -> Table:
        """Return the table definition for ``name`` (case-insensitive)."""
        try:
            return self.tables[name.lower()]
        except KeyError:
            raise SchemaError(f"unknown table {name!r}") from None

    def relationship_types(self) -> List[Tuple[str, str, str]]:
        """All relationship types as ``(source, link, target)`` triples.

        Foreign keys contribute ``(owner, fk_name, referenced)``; m:n links
        contribute ``(table_a, link_name, table_b)``.
        """
        out = []
        for table in self.tables.values():
            for fk in table.foreign_keys.values():
                out.append((table.name, fk.name, fk.references.lower()))
        for m2m in self.many_to_many.values():
            out.append((m2m.table_a.lower(), m2m.name, m2m.table_b.lower()))
        return out

    def __contains__(self, name: str) -> bool:
        return name.lower() in self.tables

    def __iter__(self):
        return iter(self.tables.values())

    def __len__(self) -> int:
        return len(self.tables)


def imdb_schema() -> Schema:
    """The IMDB schema of Fig. 1(b): six tables star-joined on Movie.

    All five relationships are m:n per the figure; each credit is stored as
    a link instance (see :meth:`repro.db.Database.link`), which at the graph
    level yields the two directed edges of Table II.
    """
    movie = Table(
        "movie",
        [Column("title"), Column("year", INTEGER, searchable=False),
         Column("votes", INTEGER, searchable=False)],
    )

    def person(table_name: str) -> Table:
        return Table(table_name, [Column("name")])

    company = Table("company", [Column("name")])
    links = [
        ManyToMany("acts_in", "actor", "movie"),
        ManyToMany("acts_in_f", "actress", "movie"),
        ManyToMany("directs", "director", "movie"),
        ManyToMany("produces", "producer", "movie"),
        ManyToMany("makes", "company", "movie"),
    ]
    return Schema(
        [movie, person("actor"), person("actress"), person("director"),
         person("producer"), company],
        many_to_many=links,
    )


def dblp_schema() -> Schema:
    """The DBLP schema of Fig. 1(a): Conference, Paper, Author.

    Paper references Conference via a foreign key (1:n); authorship and
    citations are m:n.  The ``cites`` self-link runs citing -> cited, so
    Table II's asymmetric weights apply to its two directions.
    """
    conference = Table("conference", [Column("name")])
    paper = Table(
        "paper",
        [Column("title"), Column("year", INTEGER, searchable=False),
         Column("citations", INTEGER, searchable=False)],
        foreign_keys=[
            ForeignKey("venue", "conference_id", "conference"),
        ],
    )
    author = Table("author", [Column("name")])
    links = [
        ManyToMany("writes", "author", "paper"),
        ManyToMany("cites", "paper", "paper"),
    ]
    return Schema([conference, paper, author], many_to_many=links)
