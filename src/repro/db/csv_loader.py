"""Loading a database from a directory of CSV files.

Real deployments rarely start from Python dicts; this loader ingests the
classic dump layout::

    <directory>/
        movie.csv          # one file per table; header row includes 'pk'
        actor.csv
        links.csv          # link,a,b  — one row per m:n link instance

Values are coerced by the schema (integer/float columns parse, empty
strings become NULL/absent).  FK ordering is handled by the same
topological loader the dict path uses.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Any, Dict, List, Union

from ..exceptions import DatasetError
from .database import Database
from .loader import load_records
from .schema import Schema

LINKS_FILE = "links.csv"


def _read_table_csv(path: Path, table) -> List[Dict[str, Any]]:
    fk_columns = {fk.column for fk in table.foreign_keys.values()}
    rows: List[Dict[str, Any]] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        if reader.fieldnames is None or "pk" not in reader.fieldnames:
            raise DatasetError(f"{path.name}: missing header with 'pk'")
        for line_number, record in enumerate(reader, start=2):
            cleaned: Dict[str, Any] = {}
            for key, value in record.items():
                if key is None:
                    raise DatasetError(
                        f"{path.name}:{line_number}: extra unnamed column"
                    )
                if value is None or value == "":
                    continue
                if key in fk_columns:
                    # foreign keys reference integer primary keys
                    try:
                        value = int(value)
                    except ValueError:
                        raise DatasetError(
                            f"{path.name}:{line_number}: non-integer "
                            f"foreign key {key}={value!r}"
                        ) from None
                cleaned[key] = value
            try:
                cleaned["pk"] = int(cleaned["pk"])
            except (KeyError, ValueError):
                raise DatasetError(
                    f"{path.name}:{line_number}: bad or missing pk"
                ) from None
            rows.append(cleaned)
    return rows


def _read_links_csv(path: Path) -> List[Dict[str, Any]]:
    links: List[Dict[str, Any]] = []
    with path.open(newline="") as handle:
        reader = csv.DictReader(handle)
        expected = {"link", "a", "b"}
        if reader.fieldnames is None or not expected <= set(reader.fieldnames):
            raise DatasetError(
                f"{path.name}: header must contain link,a,b"
            )
        for line_number, record in enumerate(reader, start=2):
            try:
                links.append({
                    "link": record["link"],
                    "a": int(record["a"]),
                    "b": int(record["b"]),
                })
            except (KeyError, TypeError, ValueError):
                raise DatasetError(
                    f"{path.name}:{line_number}: malformed link row"
                ) from None
    return links


def load_csv_directory(
    schema: Schema, directory: Union[str, Path]
) -> Database:
    """Load ``<table>.csv`` files plus an optional ``links.csv``.

    Args:
        schema: the target schema; every CSV file (except links.csv)
            must correspond to one of its tables.
        directory: the dump directory.

    Returns:
        A validated database.

    Raises:
        DatasetError: unknown files, malformed rows, or (via the dict
            loader) integrity violations.
    """
    directory = Path(directory)
    if not directory.is_dir():
        raise DatasetError(f"{directory} is not a directory")
    rows: Dict[str, List[Dict[str, Any]]] = {}
    links: List[Dict[str, Any]] = []
    for path in sorted(directory.glob("*.csv")):
        if path.name == LINKS_FILE:
            links = _read_links_csv(path)
            continue
        table = path.stem.lower()
        if table not in schema:
            raise DatasetError(
                f"{path.name} does not match any schema table"
            )
        rows[table] = _read_table_csv(path, schema.table(table))
    if not rows:
        raise DatasetError(f"no table CSV files found in {directory}")
    return load_records(schema, {"rows": rows, "links": links})


def dump_csv_directory(
    db: Database, directory: Union[str, Path]
) -> Path:
    """Write a database back out in the same CSV layout (round-trip
    companion of :func:`load_csv_directory`)."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    for table in db.schema:
        columns = list(table.columns)
        fk_columns = [fk.column for fk in table.foreign_keys.values()]
        fieldnames = ["pk", *columns, *fk_columns]
        with (directory / f"{table.name}.csv").open(
            "w", newline=""
        ) as handle:
            writer = csv.DictWriter(handle, fieldnames=fieldnames)
            writer.writeheader()
            for row in db.rows(table.name):
                record = {"pk": row.pk}
                for name in columns + fk_columns:
                    value = row.values.get(name)
                    if value is not None:
                        record[name] = value
                writer.writerow(record)
    with (directory / LINKS_FILE).open("w", newline="") as handle:
        writer = csv.DictWriter(handle, fieldnames=["link", "a", "b"])
        writer.writeheader()
        for name, a, b in db.links():
            writer.writerow({"link": name, "a": a, "b": b})
    return directory
