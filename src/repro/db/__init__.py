"""Minimal relational substrate: schemas, tables, tuples, and loading.

This package supplies the "database" the paper searches over.  It is not a
full RDBMS — keyword search only needs typed tuples, primary keys, and
foreign-key links — but it enforces the integrity constraints the data
graph construction relies on.
"""

from .schema import Column, ForeignKey, Table, Schema
from .database import Database, Row
from .loader import load_records
from .csv_loader import dump_csv_directory, load_csv_directory

__all__ = [
    "Column",
    "ForeignKey",
    "Table",
    "Schema",
    "Database",
    "Row",
    "load_records",
    "load_csv_directory",
    "dump_csv_directory",
]
