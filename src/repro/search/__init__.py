"""Top-k answer generation: naive, exhaustive, and branch-and-bound."""

from .candidate import CandidateTree
from .naive import NaiveSearch
from .enumerate import enumerate_answers
from .bounds import UpperBoundEstimator
from .arena import CandidateArena
from .branch_and_bound import (
    AnytimeSnapshot,
    BranchAndBoundSearch,
    SearchStats,
)
from .sharded import ShardedExecutor, ShardedSearch, ShardWorkerPool

__all__ = [
    "CandidateTree",
    "CandidateArena",
    "NaiveSearch",
    "enumerate_answers",
    "UpperBoundEstimator",
    "AnytimeSnapshot",
    "BranchAndBoundSearch",
    "SearchStats",
    "ShardedExecutor",
    "ShardedSearch",
    "ShardWorkerPool",
]
