"""Exhaustive answer enumeration (test oracle).

Enumerates every Definition-3 answer up to a node-count cap by growing
subtrees edge-by-edge with signature-based de-duplication.  Exponential by
nature — use only on small graphs (the optimality property tests do).
"""

from __future__ import annotations

from typing import Iterator, List, Set

from ..exceptions import SearchError
from ..graph.datagraph import DataGraph
from ..model.jtt import JoinedTupleTree
from ..text.matcher import MatchSets


def enumerate_answers(
    graph: DataGraph,
    match: MatchSets,
    max_diameter: int,
    max_nodes: int = 8,
) -> Iterator[JoinedTupleTree]:
    """Yield every valid answer tree (reduced, covering, within caps).

    Args:
        graph: the data graph.
        match: the query's match sets.
        max_diameter: Definition-3 diameter cap ``D``.
        max_nodes: enumeration size cap (raises if < 1).

    Yields:
        Each distinct :class:`JoinedTupleTree` answer exactly once, in a
        deterministic order.
    """
    if max_nodes < 1:
        raise SearchError("max_nodes must be >= 1")
    seen: Set[JoinedTupleTree] = set()
    frontier: List[JoinedTupleTree] = []
    for node in sorted(match.all_nodes):
        tree = JoinedTupleTree.single(node)
        seen.add(tree)
        frontier.append(tree)

    emitted: List[JoinedTupleTree] = []
    while frontier:
        tree = frontier.pop()
        if (
            tree.diameter <= max_diameter
            and tree.is_reduced(match)
            and tree.covers(match)
        ):
            emitted.append(tree)
        if len(tree.nodes) >= max_nodes:
            continue
        for node in tree.nodes:
            for neighbor in graph.neighbors(node):
                if neighbor in tree.nodes:
                    continue
                extended = tree.with_edge(node, neighbor)
                if extended.diameter > max_diameter:
                    continue
                if extended not in seen:
                    seen.add(extended)
                    frontier.append(extended)

    emitted.sort(key=lambda t: (len(t.nodes), sorted(t.nodes), sorted(t.edges)))
    yield from emitted
