"""Admissible upper bounds for candidate trees (Section IV-B).

The paper combines a *complete estimate* ``ce`` (best score reachable by
completing the candidate) and a *potential estimate* ``pe`` (best node
score any additionally attached non-free node could get) into
``ub(C) = max(ce(C), pe(C))`` (Lemma 1).  This module implements both,
tightened to be provably admissible under this library's exact scoring —
the property tests in ``tests/test_search_bounds.py`` check
``ub(C) >= score(T)`` for every answer ``T`` expandable from ``C``.

Derivation (see DESIGN.md for the narrative version).  Write ``C`` for the
candidate with root ``r``, ``S`` for its non-free nodes, and ``T ⊇ C`` for
any answer grown/merged from it.  The expansion invariant guarantees that
in ``T`` only ``r`` has gained tree neighbors; every other node of ``C``
keeps exactly the neighborhood it has in ``C``.  Consequently:

* ``f_T(u→v) <= fbar_C(u→v)`` for ``u, v ∈ C``, where ``fbar`` is the
  delivery computed on ``C`` with the split share at ``r`` replaced by 1
  (expansion can only enlarge ``r``'s split denominator);
* any message from a future source ``x ∉ C`` reaches ``v ∈ C`` only
  through ``r``, so ``f_T(x→v) <= gen(x) * ret(x→r) * inside(v)``, where
  ``ret(x→r)`` is an upper bound on the retention of any path into ``r``
  (at worst ``d_r``, tighter with an index) and ``inside(v)`` is the exact
  in-``C`` delivery factor from ``r`` to ``v`` (dampening *after* ``r``);
* symmetrically ``f_T(u→x) <= fbar_C(u→r) * ret(r→x)``; per-``x``
  retention and missing-keyword generation caps combine in
  :meth:`UpperBoundEstimator._potential_estimate` (see also
  docs/ALGORITHMS.md §2.2).

Then for ``v ∈ S`` the node score in any ``T`` is bounded by
``b(v) = min( min_{u∈S\\{v}} fbar_C(u→v),
min_{k missing} G_k * inside(v) )`` with
``G_k = max_{x∈En(k)\\C} gen(x) * ret(x→r)`` (some ``x`` covering each
missing keyword must exist in any completion).  Every node of
``T \\ C`` scores at most the potential estimate ``pe``.  Since ``score(T)`` is the average over ``S(T) = S ∪ X`` and
``avg(A ∪ B) <= max(avg A, max B)``:

    score(T) <= max( ce = avg_{v∈S} b(v),  pe )            (Lemma 1)
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..graph.datagraph import DataGraph
from ..model.jtt import JoinedTupleTree
from ..rwmp.scoring import RWMPScorer
from ..text.matcher import MatchSets
from .candidate import CandidateTree


class UpperBoundEstimator:
    """Computes ``ub(C) = max(ce(C), pe(C))`` for candidate trees.

    Args:
        graph: the data graph.
        scorer: the query's RWMP scorer (supplies generation counts and
            dampening rates).
        index: optional index (naive pairs or star) exposing
            ``retention_upper(u, v)`` and ``distance_lower(u, v)``; used to
            tighten the outside-retention factors (Section V "Benefits").
    """

    def __init__(
        self,
        graph: DataGraph,
        scorer: RWMPScorer,
        index: Optional[object] = None,
        semantics: str = "and",
    ) -> None:
        self.graph = graph
        self.scorer = scorer
        self.match: MatchSets = scorer.match
        self.index = index
        # Compiled CSR view: binary-search adjacency tests and
        # pre-sorted neighbor arrays for the bound terms.
        self._compiled = graph.compiled()
        #: Under OR semantics a completion need not supply the missing
        #: keywords, so every missing-keyword bound term is dropped (the
        #: remaining terms stay admissible for the wider answer space).
        self.semantics = semantics
        self._sorted_gen: Dict[str, List[Tuple[float, int]]] = {}
        self._max_rate_enq: Optional[float] = None
        # Index lookups repeat heavily across candidates sharing a root
        # (star-index case 2/3 decompositions are not free); memoize them
        # for the lifetime of the query.
        self._ret_cache: Dict[Tuple[int, int], float] = {}
        self._dist_cache: Dict[Tuple[int, int], float] = {}
        self._nbr_rate_cache: Dict[int, float] = {}
        # Per-root tables for the potential estimate: the per-addition
        # retention factors depend only on (root, x), not on the
        # candidate, and roots repeat across thousands of candidates.
        self._pe_cache: Dict[int, List[Tuple[int, float, float, frozenset]]] = {}
        self._into_cache: Dict[Tuple[int, int], float] = {}
        # Admit-time cap tables: G_k(r) = max_{x in En(k)} gen(x) *
        # ret(x -> r) is a pure function of (root, keyword) — see
        # :meth:`admit_cap`.
        self._gk_cache: Dict[Tuple[int, str], float] = {}
        self._all_keywords = frozenset(self.match.keywords)

    def _index_retention(self, u: int, v: int) -> float:
        key = (u, v)
        cached = self._ret_cache.get(key)
        if cached is None:
            cached = self.index.retention_upper(u, v)
            self._ret_cache[key] = cached
        return cached

    def _index_distance(self, u: int, v: int) -> float:
        key = (u, v)
        cached = self._dist_cache.get(key)
        if cached is None:
            cached = self.index.distance_lower(u, v)
            self._dist_cache[key] = cached
        return cached

    # -------------------------------------------------------------- pieces

    def _keyword_candidates(self, keyword: str) -> List[Tuple[float, int]]:
        """Nodes of ``En(k)`` with their generation counts, descending."""
        cached = self._sorted_gen.get(keyword)
        if cached is None:
            pairs = [
                (self.scorer.generation(node), node)
                for node in self.match.per_keyword.get(keyword, ())
            ]
            pairs.sort(key=lambda item: (-item[0], item[1]))
            cached = pairs
            self._sorted_gen[keyword] = cached
        return cached

    def _max_enq_rate(self) -> float:
        """Maximum dampening rate among all non-free nodes of the query."""
        if self._max_rate_enq is None:
            rates = [
                self.scorer.dampening.rate(node)
                for node in self.match.all_nodes
            ]
            self._max_rate_enq = max(rates) if rates else 1.0
        return self._max_rate_enq

    def _max_neighbor_rate(self, node: int) -> float:
        """Largest dampening rate among ``node``'s graph neighbors.

        Any path ending (or starting) at ``node`` whose other endpoint is
        not adjacent must pass through one of these neighbors, so their
        best rate bounds the extra hop's retention.  Cached per node.
        """
        cached = self._nbr_rate_cache.get(node)
        if cached is None:
            rate = self.scorer.dampening.rate
            neighbors = self._compiled.neighbors(node)
            cached = max((rate(n) for n in neighbors), default=1.0)
            self._nbr_rate_cache[node] = cached
        return cached

    def _adjacent(self, a: int, b: int) -> bool:
        return self._compiled.adjacent(a, b)

    def _retention_into(self, node: int, root: int, d_root: float) -> float:
        """Upper bound on message retention of any path ``node -> root``.

        A pure function of ``(node, root)`` for the lifetime of the
        query, memoized — the adjacency test behind it is a CSR binary
        search, and candidates sharing a root repeat the same lookups.
        """
        key = (node, root)
        cached = self._into_cache.get(key)
        if cached is not None:
            return cached
        if self.index is not None:
            value = min(d_root, self._index_retention(node, root))
        elif self._adjacent(node, root):
            value = d_root
        else:
            # non-adjacent: at least one intermediate, itself a root
            # neighbor
            value = d_root * self._max_neighbor_rate(root)
        self._into_cache[key] = value
        return value

    def admit_cap(self, root: int, missing, sources) -> float:
        """Admit-time cap on any completion of an *incomplete* candidate.

        An O(|S| + |M|) admissible bound that needs no delivery pass —
        cheap enough to evaluate at admission, where the lazy path
        otherwise relies on the (much looser) inherited parent bound.
        With a pairs/star index attached, :meth:`_retention_into` uses
        the precomputed retentions, which is what makes this cap bite;
        without one the adjacency fallbacks keep it sound but looser.
        AND semantics only — under OR nothing forces the missing
        keywords to attach, so no cap of this shape is admissible.

        Derivation (docs/ALGORITHMS.md §2.8).  Let ``C`` have root
        ``r``, sources ``S`` and missing keywords ``M != {}``.  Any
        answer ``T`` completed from ``C`` satisfies
        ``score(T) <= max(avg_{v in S} b(v), max_{x in S(T) \\ S} b(x))``
        (the Lemma-1 split).  Every node of ``T \\ C`` attaches through
        ``r``:

        * for ``v in S``: each missing ``k`` is supplied by a source
          ``x_k in T \\ C``, so
          ``b(v) <= f_T(x_k -> v) <= gen(x_k) * ret(x_k -> r) <= G_k(r)``
          with ``G_k(r) = max_{x in En(k)} gen(x) * ret(x -> r)``
          (in-tree continuation factors are <= 1), hence
          ``avg_S <= min_{k in M} G_k(r)``;
        * for a new source ``x``: any ``u in S`` (nonempty) bounds it,
          ``b(x) <= f_T(u -> x) <= gen(u) * ret(u -> r)``, hence
          ``max_X <= H = min_{u in S} gen(u) * ret(u -> r)``
          (``ret = 1`` when ``u == r``).

        ``cap = max(min_k G_k(r), H)``.  ``G_k`` ranges over all of
        ``En(k)`` — a pure function of ``(root, keyword)``, memoized for
        the lifetime of the query.

        Args:
            root: the candidate's root node.
            missing: the missing keywords (must be non-empty).
            sources: the candidate's non-free nodes (non-empty).
        """
        rate = self.scorer.dampening.rate
        d_root = rate(root)
        gk_min = float("inf")
        for keyword in missing:
            key = (root, keyword)
            gk = self._gk_cache.get(key)
            if gk is None:
                gk = 0.0
                for gen, node in self._keyword_candidates(keyword):
                    if gen * d_root <= gk:
                        break  # sorted desc and ret <= d_root
                    value = gen * self._retention_into(node, root, d_root)
                    if value > gk:
                        gk = value
                self._gk_cache[key] = gk
            if gk < gk_min:
                gk_min = gk
        generation = self.scorer.generation
        h = float("inf")
        for u in sources:
            g = generation(u)
            value = g if u == root else (
                g * self._retention_into(u, root, d_root)
            )
            if value < h:
                h = value
        return max(gk_min, h) if h != float("inf") else gk_min

    def _best_outside_gen(
        self, keyword: str, nodes, root: int, d_root: float
    ) -> float:
        """``G_k``: best ``gen(x) * ret(x -> root)`` over ``En(k) \\ C``.

        ``nodes`` is any set-like container of the candidate's node ids —
        a ``frozenset`` on the object path, a plain ``set`` built from an
        arena slice on the arena path.
        """
        best = 0.0
        for gen, node in self._keyword_candidates(keyword):
            if gen * d_root <= best:
                break  # sorted by gen desc; no later node can beat `best`
            if node in nodes:
                continue
            best = max(best, gen * self._retention_into(node, root, d_root))
        return best

    def _max_gen_outside(self, keyword: str, nodes) -> float:
        """Largest generation count among ``En(k) \\ C`` (no retention)."""
        for gen, node in self._keyword_candidates(keyword):
            if node not in nodes:
                return gen
        return 0.0

    def _pe_entries(
        self, root: int
    ) -> List[Tuple[int, float, float, frozenset]]:
        """Per-root table of ``(x, d_x, ret(root -> x), keywords(x))``.

        Everything :meth:`_potential_estimate` needs about an addition
        ``x`` except the per-candidate pieces (tree membership, missing
        keywords) is a function of the root alone, and a root is shared
        by thousands of candidates in one search.  The table preserves
        the iteration order of ``match.all_nodes`` so the early-exit
        point — and hence the returned value — is identical to the
        uncached reference.
        """
        cached = self._pe_cache.get(root)
        if cached is None:
            rate = self.scorer.dampening.rate
            keywords_of = self.match.keywords_of
            cached = []
            for x in self.match.all_nodes:
                d_x = rate(x)
                if self.index is not None:
                    ret = min(d_x, self._index_retention(root, x))
                elif self._adjacent(root, x):
                    ret = d_x
                else:
                    # non-adjacent: charge the forced intermediate hop
                    ret = d_x * self._max_neighbor_rate(root)
                cached.append(
                    (x, d_x, ret, keywords_of.get(x, frozenset()))
                )
            self._pe_cache[root] = cached
        return cached

    def _potential_estimate(
        self,
        root: int,
        nodes,
        fbar_min: float,
        missing,
    ) -> float:
        """``pe``: bound on the score of any node added outside ``C``.

        For a specific added node ``x`` two families of deliveries bound
        its min-over-sources score:

        * from any source already in ``C``: at most
          ``fbar_min * ret(root -> x)``, where the retention is at worst
          ``d_x`` (every delivery dampens at its destination) and tighter
          with an index;
        * for every *missing* keyword ``k`` that ``x`` itself does not
          match, the completion contains a source ``y ∈ En(k) \\ C``
          distinct from ``x``, and ``f(y -> x) <= gen(y) * d_x``.

        ``pe`` is the max of this per-``x`` bound over all possible
        additions; nodes matching every missing keyword fall back to the
        first family only.  The per-``x`` retention factors come from the
        memoized per-root table (:meth:`_pe_entries`); the returned value
        is bitwise identical to :meth:`_potential_estimate_reference`.
        """
        caps = {k: self._max_gen_outside(k, nodes) for k in missing}
        best = 0.0
        cutoff = fbar_min * self._max_enq_rate()
        for x, d_x, ret, x_keywords in self._pe_entries(root):
            if x in nodes:
                continue
            bound = fbar_min * ret
            for keyword in missing:
                if keyword not in x_keywords:
                    cap = caps[keyword] * d_x
                    if cap < bound:
                        bound = cap
            if bound > best:
                best = bound
            if best >= cutoff:
                break  # cannot grow further
        return best

    def _potential_estimate_reference(
        self,
        cand: CandidateTree,
        fbar_min: float,
        missing,
    ) -> float:
        """The uncached ``pe`` (see :meth:`_potential_estimate`).

        Recomputes every retention factor from the graph on each call;
        kept verbatim as the independent implementation the memoized
        fast path is differentially checked against, and as part of the
        ``upper_bound_reference`` benchmark baseline.
        """
        rate = self.scorer.dampening.rate
        caps = {k: self._max_gen_outside(k, cand.tree.nodes) for k in missing}
        best = 0.0
        for x in self.match.all_nodes:
            if x in cand.tree.nodes:
                continue
            d_x = rate(x)
            if self.index is not None:
                ret = min(d_x, self._index_retention(cand.root, x))
            elif self._adjacent(cand.root, x):
                ret = d_x
            else:
                # non-adjacent: charge the forced intermediate hop
                ret = d_x * self._max_neighbor_rate(cand.root)
            bound = fbar_min * ret
            x_keywords = self.match.keywords_of.get(x, frozenset())
            for keyword in missing:
                if keyword not in x_keywords:
                    bound = min(bound, caps[keyword] * d_x)
            best = max(best, bound)
            if best >= fbar_min * self._max_enq_rate():
                break  # cannot grow further
        return best

    def _tree_transfer(
        self, tree: JoinedTupleTree, root: int
    ) -> Tuple[Dict[int, Tuple[int, ...]], Dict[Tuple[int, int], float]]:
        """Per-directed-edge transfer factors with the root split freed.

        The delivery of one message unit across edge ``a -> b`` is
        ``share(a -> b) * d_b`` with ``share = w(a, b) / den(a)`` over
        ``a``'s in-tree out-weights — except at the root, whose split is
        replaced by 1 (the admissibility device: expansion only enlarges
        the root's denominator).  A delivery between any two tree nodes
        is then the product of the factors along their unique path, which
        lets every per-source pass run without touching the graph.
        """
        rate = self.scorer.dampening.rate
        adj: Dict[int, Tuple[int, ...]] = {
            n: tuple(sorted(tree.neighbors(n))) for n in tree.nodes
        }
        tau: Dict[Tuple[int, int], float] = {}
        for a in tree.nodes:
            out = self.graph.out_edges(a)
            if a == root:
                for b in adj[a]:
                    tau[(a, b)] = rate(b)
                continue
            den = sum(out.get(b, 0.0) for b in adj[a])
            for b in adj[a]:
                share = out.get(b, 0.0) / den if den > 0.0 else 0.0
                tau[(a, b)] = share * rate(b)
        return adj, tau

    @staticmethod
    def _deliver(
        adj: Dict[int, Tuple[int, ...]],
        tau: Dict[Tuple[int, int], float],
        source: int,
        initial: float,
    ) -> Dict[int, float]:
        """Deliveries from ``source`` to every other node under ``tau``."""
        delivered: Dict[int, float] = {}
        if initial <= 0.0:
            return {n: 0.0 for n in adj if n != source}
        stack = [(source, -1, initial)]
        while stack:
            node, parent, value = stack.pop()
            for nbr in adj[node]:
                if nbr != parent:
                    kept = value * tau[(node, nbr)]
                    delivered[nbr] = kept
                    stack.append((nbr, node, kept))
        for n in adj:
            if n != source and n not in delivered:
                delivered[n] = 0.0
        return delivered

    @staticmethod
    def _deliver_factors(
        factors: Dict[int, Tuple[Tuple[int, float], ...]],
        source: int,
        initial: float,
    ) -> Dict[int, float]:
        """Delivery pass over per-node ``(neighbor, factor)`` lists.

        Same semantics as :meth:`_deliver`, but the transfer factor
        rides along with the neighbor in the candidate's structurally
        shared factor lists (:mod:`repro.search.candidate`), so the hot
        loop never hashes an edge tuple or rebuilds adjacency.  A
        non-positive initial value short-circuits to an empty mapping —
        read results with ``.get(node, 0.0)``.
        """
        out: Dict[int, float] = {}
        if initial <= 0.0:
            return out
        stack = [(source, -1, initial)]
        while stack:
            node, parent, value = stack.pop()
            for nbr, factor in factors[node]:
                if nbr != parent:
                    kept = value * factor
                    out[nbr] = kept
                    if len(factors[nbr]) > 1:
                        # leaves (single factor entry: the edge back to
                        # `node`) have nothing further to deliver to
                        stack.append((nbr, node, kept))
        return out

    # -------------------------------------------------------------- bounds

    def upper_bound(self, cand: CandidateTree) -> float:
        """``ub(C) = max(ce(C), pe(C))`` — admissible by Lemma 1.

        Fast path: when the candidate carries incrementally maintained
        transfer factor lists (see :mod:`repro.search.candidate`) they
        are used directly — a grow/merge chain never rebuilds adjacency
        or the per-edge ``tau`` map, and the delivery passes iterate the
        candidate's shared factor lists.  Candidates built without a
        :class:`~repro.search.candidate.TransferContext` fall back to
        the full :meth:`_tree_transfer` rebuild; both paths multiply
        identical factors along identical paths, so the bound value is
        bitwise the same (pinned by tests/test_properties_search_cache).
        """
        tree = cand.tree
        root = cand.root
        sources = cand.sources(self.match)
        if not sources:
            return 0.0
        gen = self.scorer.generation
        rate = self.scorer.dampening.rate
        d_root = rate(root)

        factors = cand.transfer
        if factors is None:
            adj, tau = self._tree_transfer(tree, root)
            factors = {
                a: tuple((b, tau[(a, b)]) for b in adj[a]) for a in adj
            }
        deliver = self._deliver_factors
        gens = []
        fbar = []
        fbar_to_root_min = float("inf")
        for u in sources:
            g = gen(u)
            gens.append(g)
            delivered = deliver(factors, u, g)
            fbar.append(delivered)
            to_root = g if u == root else delivered.get(root, 0.0)
            if to_root < fbar_to_root_min:
                fbar_to_root_min = to_root

        if self.semantics == "or":
            missing: frozenset = frozenset()
        else:
            missing = self._all_keywords - cand.covered
        n_sources = len(sources)
        if missing or n_sources == 1:
            # `inside` feeds only the missing-keyword terms and the
            # lone-source fallback; skip the delivery pass otherwise.
            inside = deliver(factors, root, 1.0)
            inside[root] = 1.0
        else:
            inside = {}
        g_of = {
            k: self._best_outside_gen(k, tree.nodes, root, d_root)
            for k in missing
        }

        total = 0.0
        for i, v in enumerate(sources):
            best = float("inf")
            for j in range(n_sources):
                if j != i:
                    val = fbar[j].get(v, 0.0)
                    if val < best:
                        best = val
            if missing:
                inside_v = inside.get(v, 0.0)
                for k in missing:
                    term = g_of[k] * inside_v
                    if term < best:
                        best = term
            if best == float("inf"):
                # Lone complete source: T may equal C (score = gen(v)), or
                # gain extra sources whose deliveries bound v's new min.
                outside_best = max(
                    (
                        self._best_outside_gen(k, tree.nodes, root, d_root)
                        for k in self.match.keywords
                    ),
                    default=0.0,
                )
                best = max(gens[i], outside_best * inside.get(v, 0.0))
            total += best
        ce = total / n_sources

        pe = self._potential_estimate(
            root, tree.nodes, fbar_to_root_min, missing
        )
        return max(ce, pe)

    def upper_bound_reference(self, cand: CandidateTree) -> float:
        """The dict-based eager bound (the pre-optimization reference).

        Rebuilds the full transfer map from the graph and runs dict-keyed
        per-source delivery passes on every call.  Kept as the
        independent implementation the fast path is differentially
        checked against, and as the baseline of
        ``benchmarks/test_search_speedup.py``.
        """
        tree = cand.tree
        root = cand.root
        sources = tree.non_free_nodes(self.match)
        if not sources:
            return 0.0
        gen = self.scorer.generation
        rate = self.scorer.dampening.rate
        d_root = rate(root)

        adj, tau = self._tree_transfer(tree, root)
        fbar: Dict[int, Dict[int, float]] = {
            u: self._deliver(adj, tau, u, gen(u)) for u in sources
        }
        fbar_to_root = {
            u: (gen(u) if u == root else fbar[u].get(root, 0.0))
            for u in sources
        }
        inside = self._deliver(adj, tau, root, 1.0)
        inside[root] = 1.0

        if self.semantics == "or":
            missing: frozenset = frozenset()
        else:
            missing = frozenset(self.match.keywords) - cand.covered
        g_of = {
            k: self._best_outside_gen(k, tree.nodes, root, d_root)
            for k in missing
        }

        bounds: Dict[int, float] = {}
        for v in sources:
            terms = [fbar[u][v] for u in sources if u != v]
            terms.extend(g_of[k] * inside[v] for k in missing)
            if terms:
                bounds[v] = min(terms)
            else:
                # Lone complete source: T may equal C (score = gen(v)), or
                # gain extra sources whose deliveries bound v's new min.
                outside_best = max(
                    (
                        self._best_outside_gen(k, tree.nodes, root, d_root)
                        for k in self.match.keywords
                    ),
                    default=0.0,
                )
                bounds[v] = max(gen(v), outside_best * inside[v])
        ce = sum(bounds.values()) / len(bounds)

        pe = self._potential_estimate_reference(
            cand, min(fbar_to_root.values()), missing
        )
        return max(ce, pe)

    # ------------------------------------------------------------- pruning

    def completion_impossible(self, cand: CandidateTree, max_diameter: int) -> bool:
        """Distance-based pruning: no completion can respect the cap.

        For every missing keyword some matching node must eventually attach
        through the (current or a future) root; as shown in DESIGN.md the
        final diameter is then at least ``dist(root, En(k)) + depth(C)``,
        which is safe to test with any *lower bound* on the distance.
        Without an index this check is skipped (the paper's no-index
        configuration has no distance information either).
        """
        if self.semantics == "or":
            return False  # nothing is ever *required* to attach
        missing = frozenset(self.match.keywords) - cand.covered
        if not missing:
            return False
        for keyword in missing:
            nodes = self.match.per_keyword.get(keyword, set())
            outside = [n for n in nodes if n not in cand.tree.nodes]
            if not outside:
                return True  # keyword cannot be supplied at all
            if self.index is None:
                continue
            budget = max_diameter - cand.depth
            if budget < 1:
                return True  # attaching anything would exceed the cap
            if all(
                self._index_distance(cand.root, n) > budget
                for n in outside
            ):
                return True
        return False
