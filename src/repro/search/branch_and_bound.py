"""The branch-and-bound top-k search (Algorithm 1).

Candidate trees live in a max-priority queue keyed by their upper bound;
the head is repeatedly expanded (grow + merge), complete answers are
offered to the top-k list, and the search stops as soon as the head's
upper bound cannot beat the worst kept answer — at which point the kept
answers are provably optimal (Theorem 1).

Implementation notes:

* every candidate whose *tight* bound beats the kept top-k is registered
  per root so later candidates with the same root can merge against it
  (the paper's Line 16); under lazy evaluation registration waits until
  the tight bound is known — a cheaply-admitted candidate that never
  reaches tightening is bounded below the kept top-k, so skipping its
  merges is the same Lemma-1 prune that drops it, and every pair whose
  members both survive tightening still merges (the later-registered one
  sweeps the full partner list when it expands);
* candidates are deduplicated by (root, tree) signature;
* a candidate pruned because ``ub <= minscore`` is safe to drop entirely:
  any answer expandable from it is bounded by that same ``ub`` (see the
  correctness argument in DESIGN.md);
* the diameter cap prunes structurally (``diameter > D``) and — when an
  index is available — via distance lower bounds
  (:meth:`UpperBoundEstimator.completion_impossible`).

Lazy bound tightening (``SearchParams.lazy_bounds``, the default):

* at admit time a child candidate inherits the cheapest admissible bound
  available — its parent's latest bound for a grow, the minimum of both
  operands' for a merge.  Every answer expandable from the child is
  expandable from each parent (grow/merge only shrink the reachable
  answer set), so the inherited value stays admissible and both the
  admit-time prune and the global stop rule remain sound;
* the full ``ce/pe`` bound is computed only when a cheaply-bounded
  candidate reaches the heap head and its inherited bound still beats
  the kept top-k.  If tightening drops it below the next head it is
  re-pushed with the tight key instead of expanded — classic lazy
  best-first evaluation.  Expansion order can differ from the eager
  configuration but remains a pure function of the input (the heap key
  is a structural total order), and the returned top-k is identical up
  to tie classes (pinned by the differential oracle).

See docs/ALGORITHMS.md §2.6 for the soundness argument.

Engines (``SearchParams.engine``): the lazy loop runs either over flat
columnar candidate rows (``"arena"``, the default — see
:mod:`repro.search.arena`) or over per-object :class:`CandidateTree`
candidates (``"object"``, the reference implementation both engines are
differentially pinned against).  Eager evaluation always runs the
object path.
"""

from __future__ import annotations

import heapq
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..config import SearchParams
from ..exceptions import SearchError
from ..graph.datagraph import DataGraph
from ..model.answer import RankedAnswer, RankedList
from ..rwmp.scoring import RWMPScorer
from ..text.matcher import MatchSets
from .bounds import UpperBoundEstimator
from .candidate import CandidateTree, Signature, TransferContext


def _heap_key(ub: float, cand: CandidateTree):
    """Deterministic priority: bound first, then a structural total order.

    Ties on the upper bound are broken by (node count, node-id tuple,
    root, edge tuple) — a total order over admitted candidates (the
    signature dedup guarantees no two share root *and* tree), so the
    expansion order is a pure function of the input and never depends on
    insertion order.  Smaller trees expand first within a tie, matching
    the enumeration order of the exhaustive oracle.  The node/edge
    tuples are memoized on the candidate and maintained incrementally
    by grow/merge, so building a key allocates nothing but the tuple
    itself.
    """
    return (
        -ub,
        len(cand.tree.nodes),
        cand.sorted_nodes,
        cand.root,
        cand.sorted_edges,
    )


@dataclass
class SearchStats:
    """Counters describing one search run (used by the efficiency benches).

    Attributes:
        expanded: candidates dequeued and expanded.
        generated: candidates created (before dedup/pruning).
        enqueued: candidates that entered the priority queue.
        pruned_bound: candidates dropped because ``ub <= minscore``.
        pruned_diameter: candidates dropped by the diameter cap.
        pruned_distance: candidates dropped by index distance pruning.
        answers_found: complete answers offered to the top-k list.
        stopped_early: True when the bound test ended the search before
            the queue drained.
        bound_evals: full ``ce/pe`` upper-bound evaluations.
        cheap_admissions: candidates admitted on an inherited
            (parent-derived) bound instead of a full evaluation.
        tightened: cheaply-bounded candidates whose full bound was
            computed at the heap head.
        repushed: tightened candidates re-enqueued because the tight
            bound fell below the next head.
        admit_capped: cheap admissions whose bound was lowered by the
            index-assisted admit cap (arena engine, AND semantics).
        bound_seconds: wall-clock spent in full bound evaluations
            (admit-time tight bounds plus head tightening).
        cheap_bound_seconds: wall-clock spent computing admit-time
            cheap bounds (inherited value plus the admit cap) —
            previously lumped into ``bound_seconds``, which hid where
            the lazy path's admission time actually goes.
        tighten_seconds: the subset of ``bound_seconds`` spent
            tightening cheaply-admitted candidates at the heap head.
        expand_seconds: wall-clock spent generating grows/merges
            (excluding the admit work accounted above).
        score_seconds: wall-clock spent scoring complete answers.
        cache_lookup_seconds: wall-clock the system spent probing the
            cross-query answer cache for this search.
        served_from_cache: True when the system answered from the
            cross-query cache without running the search at all (every
            other counter is then zero).
        snapshots_yielded: anytime snapshots the generator produced
            (improvements + heartbeats + the final one); the serving
            layer reads it off slow-query span dumps to judge whether a
            deadline overshoot came from a too-sparse heartbeat.
        engine: candidate representation that ran — ``"arena"`` or
            ``"object"`` (eager evaluation always reports "object").
        arena_candidates: candidate rows live in the arena at the end
            of the run (arena engine only).
        arena_peak_bytes: high-water mark of the arena's column/pool
            storage across the run (arena engine only).
        arena_rollbacks: admissions reclaimed by arena rollback
            (duplicates and pruned candidates; arena engine only).
        shard_fanout: shards a sharded run actually searched (0 on the
            single-process engines).
        shards_terminated_early: shards cancelled by the coordinator
            because their frontier bound fell below the global k-th
            score (sharded engine only).
        shard_wall_seconds: per-shard wall-clock seconds, indexed by
            shard id (sharded engine only; empty otherwise).
    """

    expanded: int = 0
    generated: int = 0
    enqueued: int = 0
    pruned_bound: int = 0
    pruned_diameter: int = 0
    pruned_distance: int = 0
    answers_found: int = 0
    stopped_early: bool = False
    bound_evals: int = 0
    cheap_admissions: int = 0
    tightened: int = 0
    repushed: int = 0
    admit_capped: int = 0
    bound_seconds: float = 0.0
    cheap_bound_seconds: float = 0.0
    tighten_seconds: float = 0.0
    expand_seconds: float = 0.0
    score_seconds: float = 0.0
    cache_lookup_seconds: float = 0.0
    served_from_cache: bool = False
    snapshots_yielded: int = 0
    engine: str = "object"
    arena_candidates: int = 0
    arena_peak_bytes: int = 0
    arena_rollbacks: int = 0
    shard_fanout: int = 0
    shards_terminated_early: int = 0
    shard_wall_seconds: Tuple[float, ...] = ()


@dataclass(frozen=True)
class AnytimeSnapshot:
    """One anytime progress report of the branch-and-bound search.

    Attributes:
        answers: the best answers found so far, best first.
        frontier_bound: upper bound on the score of every answer not yet
            discovered (``-inf`` once the queue is exhausted).
        proven_optimal: True on the final snapshot when the search
            terminated through the bound test or queue exhaustion —
            the answers are then the true top-k (Theorem 1).
        arena_mark: O(1) high-water version stamp of the candidate
            arena at snapshot time (the number of live candidate rows)
            under the arena engine; None on the object path.
    """

    answers: List[RankedAnswer]
    frontier_bound: float
    proven_optimal: bool
    arena_mark: Optional[int] = None

    @property
    def gap(self) -> float:
        """How far above the current k-th answer the frontier reaches
        (0 when nothing unseen can change the list)."""
        if not self.answers:
            return float("inf")
        kth = self.answers[-1].score
        return max(0.0, self.frontier_bound - kth)


class BranchAndBoundSearch:
    """Top-k answer search for one query.

    Args:
        graph: the data graph.
        scorer: the query's RWMP scorer.
        match: the query's match sets (must be the scorer's).
        params: search parameters (k, diameter cap, merge mode, lazy
            bound evaluation).
        index: optional pairs/star index for bound tightening and
            distance pruning.
    """

    #: Whether the arena engine applies the index-assisted admit cap
    #: (:meth:`UpperBoundEstimator.admit_cap`) on top of the inherited
    #: cheap bound.  A class default so benchmarks can disable it per
    #: instance to measure the representation change in isolation.
    use_admit_cap = True

    #: When set (tests), the arena engine asserts after every rollback
    #: that no live heap entry or merge-partner id references the
    #: reclaimed region.
    _debug_validate = False

    def __init__(
        self,
        graph: DataGraph,
        scorer: RWMPScorer,
        match: MatchSets,
        params: Optional[SearchParams] = None,
        index: Optional[object] = None,
    ) -> None:
        if scorer.match is not match:
            raise SearchError("scorer and search must share the match sets")
        self.graph = graph
        self.scorer = scorer
        self.match = match
        self.params = params or SearchParams()
        self.bounds = UpperBoundEstimator(
            graph, scorer, index, semantics=self.params.semantics
        )
        self.stats = SearchStats()
        #: Whether the last finished run proved its top-k optimal
        #: (Theorem 1) — the system's answer cache only stores proven
        #: results.
        self.last_proven = False
        # Compiled CSR view: pre-sorted neighbor tuples for the
        # expansion loop (replaces sorted(graph.neighbors(...)) per
        # expansion).
        self._compiled = graph.compiled()
        # Incremental transfer maintenance for grow/merge (see
        # repro.search.candidate); the bound estimator consumes the
        # per-candidate factors instead of rebuilding them.
        self._ctx = TransferContext(graph, scorer.dampening.rate)
        #: The flat candidate arena of the most recent arena-engine run
        #: (None before the first run or on the object path) — the
        #: CLI's ``--stats`` arena section and the tests read it.
        self.last_arena = None

    # --------------------------------------------------------------- public

    def run(self) -> List[RankedAnswer]:
        """Execute Algorithm 1 and return the top-k answers, best first."""
        snapshot = None
        for snapshot in self.snapshots():
            pass
        return snapshot.answers if snapshot is not None else []

    def _tight_bound(self, cand: CandidateTree) -> float:
        """One timed full bound evaluation, cached on the candidate."""
        start = time.perf_counter()
        ub = self.bounds.upper_bound(cand)
        self.stats.bound_seconds += time.perf_counter() - start
        self.stats.bound_evals += 1
        cand.cached_ub = ub
        return ub

    def _cheap_bound(self, inherited: float, cand: CandidateTree) -> float:
        """The admit-time bound for a candidate with known parents.

        ``inherited`` is the minimum of the parents' latest admissible
        bounds; any answer expandable from ``cand`` is expandable from
        each parent, so the value is admissible for ``cand`` too.
        Factored out so the mutation tests can break it on purpose.
        """
        del cand  # the inherited value alone bounds every completion
        return inherited

    def snapshots(self, heartbeat: int = 0):
        """Anytime execution: yield progress snapshots during the search.

        The branch-and-bound loop is naturally *anytime*: at every point
        the kept answers are the best found so far and the queue head's
        upper bound caps everything undiscovered.  This generator yields
        an :class:`AnytimeSnapshot` whenever the kept top-k improves, and
        one final snapshot when the search terminates — with
        ``proven_optimal=True`` if termination came from the bound test
        or queue exhaustion (a ``max_candidates`` abort stays unproven).

        Consumers can stop iterating at any time; the last snapshot's
        ``frontier_bound`` is the quality certificate: no unseen answer
        can score above it (cheap inherited bounds are admissible, so
        the certificate holds in lazy mode too).

        Args:
            heartbeat: when > 0, additionally yield a snapshot every
                ``heartbeat`` queue pops even if the top-k did not
                improve.  Deadline-bounded consumers (the serving front
                end) rely on this to observe the wall clock at a bounded
                cadence; 0 (the default) keeps the improvement-only
                cadence.  The yielded sequence of *improvements* is
                identical either way.
        """
        params = self.params
        lazy = params.lazy_bounds
        if params.engine == "sharded":
            # The sharded engine is a coordinator over *multiple*
            # per-shard searches; it lives at the system layer
            # (repro.search.sharded), not inside one search object.
            raise SearchError(
                "engine='sharded' must run through "
                "CIRankSystem.search/search_anytime (repro.search.sharded)"
            )
        if lazy and params.engine == "arena":
            # The flat-arena engine (repro.search.arena): identical
            # control flow over columnar candidate rows.  Local import —
            # arena.py imports AnytimeSnapshot from this module.
            from .arena import arena_snapshots
            yield from arena_snapshots(self, heartbeat)
            return
        stats = self.stats
        stats.engine = "object"
        self.last_proven = False
        top_k = RankedList(params.k)
        heap: List = []
        seen: Set[Signature] = set()
        by_root: Dict[int, List[CandidateTree]] = {}

        def admit(
            cand: CandidateTree, inherited: Optional[float] = None
        ) -> bool:
            """Register, score-if-complete, bound, and enqueue a candidate.

            Returns True when the candidate was new (not a duplicate), so
            the merge cascade knows whether to continue through it.
            """
            stats.generated += 1
            if cand.diameter > params.diameter:
                stats.pruned_diameter += 1
                return False
            signature = cand.signature()
            if signature in seen:
                return False
            seen.add(signature)
            if cand.is_answer(self.match, params.diameter, params.semantics):
                start = time.perf_counter()
                answer = RankedAnswer(cand.tree, self.scorer.score(cand.tree))
                stats.score_seconds += time.perf_counter() - start
                stats.answers_found += 1
                top_k.offer(answer)
            if self.bounds.completion_impossible(cand, params.diameter):
                # No completion can exist through any future root or merge,
                # so expanding (or merging through) this candidate is futile.
                stats.pruned_distance += 1
                return False
            if lazy and inherited is not None:
                start = time.perf_counter()
                ub = self._cheap_bound(inherited, cand)
                stats.cheap_bound_seconds += time.perf_counter() - start
                cand.cached_ub = ub
                tight = False
                stats.cheap_admissions += 1
            else:
                ub = self._tight_bound(cand)
                tight = True
            if top_k.full and ub <= top_k.min_score():
                # Lemma 1: every answer expandable from this candidate —
                # via grows or merges — scores at most `ub`, which cannot
                # beat the kept top-k; safe to drop the whole subtree of
                # the search space.
                stats.pruned_bound += 1
                return False
            if tight:
                # Merge-partner registration waits for a surviving tight
                # bound (see the module docstring); cheap admissions
                # register at head-tightening instead.
                by_root.setdefault(cand.root, []).append(cand)
            heapq.heappush(heap, (_heap_key(ub, cand), tight, cand))
            stats.enqueued += 1
            return True

        for node in sorted(self.match.all_nodes):
            admit(CandidateTree.initial(node, self.match))

        last_revision = -1
        proven = True
        frontier = float("-inf")
        ticks = 0
        while heap:
            key, tight, cand = heapq.heappop(heap)
            ub = -key[0]
            if top_k.full and ub <= top_k.min_score():
                # everything unexplored (this candidate included) is
                # bounded by its ub — the stop rule's certificate
                # (admissible whether the head's bound is cheap or tight)
                stats.stopped_early = True
                frontier = ub
                break
            if (
                params.max_candidates
                and stats.expanded >= params.max_candidates
            ):
                proven = False
                frontier = ub
                break
            ticks += 1
            if heartbeat and ticks % heartbeat == 0:
                # Heartbeat snapshot: the head's bound is an admissible
                # cap on everything undiscovered, so the gap certificate
                # is valid mid-search too.
                stats.snapshots_yielded += 1
                yield AnytimeSnapshot(
                    answers=top_k.as_list(),
                    frontier_bound=ub,
                    proven_optimal=False,
                )
            if not tight:
                # Lazy tightening: pay for the full bound only now that
                # the candidate leads the frontier and still beats the
                # kept top-k.
                start = time.perf_counter()
                ub = self._tight_bound(cand)
                stats.tighten_seconds += time.perf_counter() - start
                stats.tightened += 1
                if top_k.full and ub <= top_k.min_score():
                    stats.pruned_bound += 1
                    continue
                # The tight bound survived: the candidate becomes a
                # merge partner (exactly once — re-pushed entries carry
                # tight=True).
                by_root.setdefault(cand.root, []).append(cand)
                if heap and ub < -heap[0][0][0]:
                    heapq.heappush(heap, (_heap_key(ub, cand), True, cand))
                    stats.repushed += 1
                    continue
            if top_k.revision != last_revision:
                last_revision = top_k.revision
                stats.snapshots_yielded += 1
                yield AnytimeSnapshot(
                    answers=top_k.as_list(),
                    frontier_bound=ub,
                    proven_optimal=False,
                )
            stats.expanded += 1
            start = time.perf_counter()
            self._expand(cand, admit, by_root)
            stats.expand_seconds += time.perf_counter() - start

        self.last_proven = proven
        stats.snapshots_yielded += 1
        yield AnytimeSnapshot(
            answers=top_k.as_list(),
            frontier_bound=frontier,
            proven_optimal=proven,
        )

    # -------------------------------------------------------------- expand

    def _expand(self, cand: CandidateTree, admit, by_root) -> None:
        """Generate ``cand``'s grows and merges.

        The two evaluation modes expand differently:

        * eager — the seed behavior: newly admitted candidates are merged
          against all registered same-root candidates immediately, and
          merge results re-enter the cascade.  Sound because eager admit
          bound-prunes before registering, which cuts the cascade;
        * lazy — merges happen at *pop* time only: ``cand`` (just
          registered with a surviving tight bound) merges against the
          registered same-root partners, and children enqueue without
          cascading.  Deferring the merge work to tightening keeps the
          loose cheap bounds from breeding merge products that the tight
          bound would have pruned.  Pair completeness holds because
          whichever partner expands later sweeps the full registered
          list.
        """
        if self.params.lazy_bounds:
            self._expand_lazy(cand, admit, by_root)
        else:
            self._expand_eager(cand, admit, by_root)

    def _expand_lazy(self, cand: CandidateTree, admit, by_root) -> None:
        parent_ub = cand.cached_ub
        if cand.depth + 1 <= self.params.diameter:
            for neighbor in self._compiled.neighbors(cand.root):
                if neighbor not in cand.tree.nodes:
                    admit(
                        cand.grow(neighbor, self.match, self._ctx),
                        parent_ub,
                    )
        for partner in list(by_root.get(cand.root, ())):
            if partner is cand:
                continue
            if cand.depth + partner.depth > self.params.diameter:
                # the merged tree would break the cap; skip before
                # paying for the union construction
                self.stats.generated += 1
                self.stats.pruned_diameter += 1
                continue
            merged = cand.merge(partner, strict=self.params.strict_merge)
            if merged is not None:
                partner_ub = partner.cached_ub
                if parent_ub is not None and partner_ub is not None:
                    admit(merged, min(parent_ub, partner_ub))
                else:
                    admit(merged)

    def _expand_eager(self, cand: CandidateTree, admit, by_root) -> None:
        work: List[CandidateTree] = []
        if cand.depth + 1 <= self.params.diameter:
            for neighbor in self._compiled.neighbors(cand.root):
                if neighbor not in cand.tree.nodes:
                    work.append(cand.grow(neighbor, self.match, self._ctx))
        while work:
            current = work.pop()
            if not admit(current):
                continue
            # `admit` registered `current`; snapshot partners so the
            # iteration is stable while the cascade appends new ones.
            for partner in list(by_root.get(current.root, ())):
                if current.depth + partner.depth > self.params.diameter:
                    # the merged tree would break the cap; skip before
                    # paying for the union construction
                    self.stats.generated += 1
                    self.stats.pruned_diameter += 1
                    continue
                merged = current.merge(partner, strict=self.params.strict_merge)
                if merged is not None:
                    work.append(merged)
