"""The branch-and-bound top-k search (Algorithm 1).

Candidate trees live in a max-priority queue keyed by their upper bound;
the head is repeatedly expanded (grow + merge), complete answers are
offered to the top-k list, and the search stops as soon as the head's
upper bound cannot beat the worst kept answer — at which point the kept
answers are provably optimal (Theorem 1).

Implementation notes:

* every *generated* candidate is registered per root so later candidates
  with the same root can merge against it (the paper's Line 16);
* candidates are deduplicated by (root, tree) signature;
* a candidate pruned because ``ub <= minscore`` is safe to drop entirely:
  any answer expandable from it is bounded by that same ``ub`` (see the
  correctness argument in DESIGN.md);
* the diameter cap prunes structurally (``diameter > D``) and — when an
  index is available — via distance lower bounds
  (:meth:`UpperBoundEstimator.completion_impossible`).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Set

from ..config import SearchParams
from ..exceptions import SearchError
from ..graph.datagraph import DataGraph
from ..model.answer import RankedAnswer, RankedList
from ..rwmp.scoring import RWMPScorer
from ..text.matcher import MatchSets
from .bounds import UpperBoundEstimator
from .candidate import CandidateTree, Signature


def _heap_key(ub: float, cand: CandidateTree):
    """Deterministic priority: bound first, then a structural total order.

    Ties on the upper bound are broken by (node count, node-id tuple,
    root, edge tuple) — a total order over admitted candidates (the
    signature dedup guarantees no two share root *and* tree), so the
    expansion order is a pure function of the input and never depends on
    insertion order.  Smaller trees expand first within a tie, matching
    the enumeration order of the exhaustive oracle.
    """
    return (
        -ub,
        len(cand.tree.nodes),
        tuple(sorted(cand.tree.nodes)),
        cand.root,
        tuple(sorted(cand.tree.edges)),
    )


@dataclass
class SearchStats:
    """Counters describing one search run (used by the efficiency benches).

    Attributes:
        expanded: candidates dequeued and expanded.
        generated: candidates created (before dedup/pruning).
        enqueued: candidates that entered the priority queue.
        pruned_bound: candidates dropped because ``ub <= minscore``.
        pruned_diameter: candidates dropped by the diameter cap.
        pruned_distance: candidates dropped by index distance pruning.
        answers_found: complete answers offered to the top-k list.
        stopped_early: True when the bound test ended the search before
            the queue drained.
    """

    expanded: int = 0
    generated: int = 0
    enqueued: int = 0
    pruned_bound: int = 0
    pruned_diameter: int = 0
    pruned_distance: int = 0
    answers_found: int = 0
    stopped_early: bool = False


@dataclass(frozen=True)
class AnytimeSnapshot:
    """One anytime progress report of the branch-and-bound search.

    Attributes:
        answers: the best answers found so far, best first.
        frontier_bound: upper bound on the score of every answer not yet
            discovered (``-inf`` once the queue is exhausted).
        proven_optimal: True on the final snapshot when the search
            terminated through the bound test or queue exhaustion —
            the answers are then the true top-k (Theorem 1).
    """

    answers: List[RankedAnswer]
    frontier_bound: float
    proven_optimal: bool

    @property
    def gap(self) -> float:
        """How far above the current k-th answer the frontier reaches
        (0 when nothing unseen can change the list)."""
        if not self.answers:
            return float("inf")
        kth = self.answers[-1].score
        return max(0.0, self.frontier_bound - kth)


class BranchAndBoundSearch:
    """Top-k answer search for one query.

    Args:
        graph: the data graph.
        scorer: the query's RWMP scorer.
        match: the query's match sets (must be the scorer's).
        params: search parameters (k, diameter cap, merge mode).
        index: optional pairs/star index for bound tightening and
            distance pruning.
    """

    def __init__(
        self,
        graph: DataGraph,
        scorer: RWMPScorer,
        match: MatchSets,
        params: Optional[SearchParams] = None,
        index: Optional[object] = None,
    ) -> None:
        if scorer.match is not match:
            raise SearchError("scorer and search must share the match sets")
        self.graph = graph
        self.scorer = scorer
        self.match = match
        self.params = params or SearchParams()
        self.bounds = UpperBoundEstimator(
            graph, scorer, index, semantics=self.params.semantics
        )
        self.stats = SearchStats()
        # Compiled CSR view: pre-sorted neighbor tuples for the
        # expansion loop (replaces sorted(graph.neighbors(...)) per
        # expansion).
        self._compiled = graph.compiled()

    # --------------------------------------------------------------- public

    def run(self) -> List[RankedAnswer]:
        """Execute Algorithm 1 and return the top-k answers, best first."""
        snapshot = None
        for snapshot in self.snapshots():
            pass
        return snapshot.answers if snapshot is not None else []

    def snapshots(self):
        """Anytime execution: yield progress snapshots during the search.

        The branch-and-bound loop is naturally *anytime*: at every point
        the kept answers are the best found so far and the queue head's
        upper bound caps everything undiscovered.  This generator yields
        an :class:`AnytimeSnapshot` whenever the kept top-k improves, and
        one final snapshot when the search terminates — with
        ``proven_optimal=True`` if termination came from the bound test
        or queue exhaustion (a ``max_candidates`` abort stays unproven).

        Consumers can stop iterating at any time; the last snapshot's
        ``frontier_bound`` is the quality certificate: no unseen answer
        can score above it.
        """
        params = self.params
        top_k = RankedList(params.k)
        heap: List = []
        seen: Set[Signature] = set()
        by_root: Dict[int, List[CandidateTree]] = {}

        def admit(cand: CandidateTree) -> bool:
            """Register, score-if-complete, bound, and enqueue a candidate.

            Returns True when the candidate was new (not a duplicate), so
            the merge cascade knows whether to continue through it.
            """
            self.stats.generated += 1
            if cand.diameter > params.diameter:
                self.stats.pruned_diameter += 1
                return False
            signature = cand.signature()
            if signature in seen:
                return False
            seen.add(signature)
            if cand.is_answer(self.match, params.diameter, params.semantics):
                answer = RankedAnswer(cand.tree, self.scorer.score(cand.tree))
                self.stats.answers_found += 1
                top_k.offer(answer)
            if self.bounds.completion_impossible(cand, params.diameter):
                # No completion can exist through any future root or merge,
                # so expanding (or merging through) this candidate is futile.
                self.stats.pruned_distance += 1
                return False
            ub = self.bounds.upper_bound(cand)
            if top_k.full and ub <= top_k.min_score():
                # Lemma 1: every answer expandable from this candidate —
                # via grows or merges — scores at most `ub`, which cannot
                # beat the kept top-k; safe to drop the whole subtree of
                # the search space.
                self.stats.pruned_bound += 1
                return False
            by_root.setdefault(cand.root, []).append(cand)
            heapq.heappush(heap, (_heap_key(ub, cand), cand))
            self.stats.enqueued += 1
            return True

        for node in sorted(self.match.all_nodes):
            admit(CandidateTree.initial(node, self.match))

        last_revision = -1
        proven = True
        frontier = float("-inf")
        while heap:
            key, cand = heapq.heappop(heap)
            ub = -key[0]
            if top_k.full and ub <= top_k.min_score():
                # everything unexplored (this candidate included) is
                # bounded by its ub — the stop rule's certificate
                self.stats.stopped_early = True
                frontier = ub
                break
            if (
                params.max_candidates
                and self.stats.expanded >= params.max_candidates
            ):
                proven = False
                frontier = ub
                break
            if top_k.revision != last_revision:
                last_revision = top_k.revision
                yield AnytimeSnapshot(
                    answers=top_k.as_list(),
                    frontier_bound=ub,
                    proven_optimal=False,
                )
            self.stats.expanded += 1
            self._expand(cand, admit, by_root)

        yield AnytimeSnapshot(
            answers=top_k.as_list(),
            frontier_bound=frontier,
            proven_optimal=proven,
        )

    # -------------------------------------------------------------- expand

    def _expand(self, cand: CandidateTree, admit, by_root) -> None:
        """Grow ``cand`` in every direction, then cascade merges.

        Every newly admitted candidate is merged against all previously
        registered candidates sharing its root; merge results re-enter the
        cascade, which is how roots with several children arise.
        """
        work: List[CandidateTree] = []
        if cand.depth + 1 <= self.params.diameter:
            for neighbor in self._compiled.neighbors(cand.root):
                if neighbor not in cand.tree.nodes:
                    work.append(cand.grow(neighbor, self.match))
        while work:
            current = work.pop()
            if not admit(current):
                continue
            # `admit` may have registered `current`; snapshot partners so
            # the iteration is stable while the cascade appends new ones.
            for partner in list(by_root.get(current.root, ())):
                if current.depth + partner.depth > self.params.diameter:
                    # the merged tree would break the cap; skip before
                    # paying for the union construction
                    self.stats.generated += 1
                    self.stats.pruned_diameter += 1
                    continue
                merged = current.merge(partner, strict=self.params.strict_merge)
                if merged is not None:
                    work.append(merged)
