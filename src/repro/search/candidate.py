"""Candidate trees and the grow/merge expansion operators (Section IV-B).

A candidate tree ``C(v_i)`` is a rooted tree covering at least one query
keyword.  The two expansion operators come from Ding et al.'s dynamic
programming:

* **grow** — a neighbor ``v_j ∉ C`` of the root becomes the new root with
  the old tree as its single child;
* **merge** — two candidates with the same root and otherwise disjoint
  node sets are unioned.

These operators maintain the key invariant the upper bounds rely on: once
a node stops being the root, its tree neighborhood is frozen — any later
expansion attaches only at the current root.

The paper's merge precondition ("the result covers more keywords than
either") is optional (``strict``): DESIGN.md explains why the permissive
variant is required for completeness over Definition-3 answers.

Structural sharing
------------------

Candidates are generated orders of magnitude more often than they are
expanded, so everything the search reads per candidate — the signature,
the sorted node/edge tuples of the deterministic heap key, and the
per-directed-edge *transfer factors* of the upper bound — is cached on
the candidate and derived **incrementally** from its parent(s) instead
of recomputed:

* sorted node tuple: one ``bisect`` insertion per grow, one linear
  merge of two sorted tuples per merge (they share only the root);
* sorted edge tuple: same, the new/unioned edges are disjoint;
* transfer factors (``tau(a -> b) = share(a -> b) * d_b`` with the
  root's split freed, see :mod:`repro.search.bounds`), stored as one
  immutable ``(neighbor, factor)`` tuple per node: the expansion
  invariant means a grow changes only the *old* root's factor list
  (its split denominator gains the new edge) plus the one-entry list
  of the new root, and a merge changes only the shared root's list
  (the concatenation of both operands' — each already freed).  Every
  other node's tuple is shared with the parent candidate, so the
  bound's per-candidate ``O(|C|)`` weighted transfer rebuild becomes
  a dict copy of shared references plus ``O(deg(root))`` updates.

Transfer maintenance needs graph weights and dampening rates, which the
candidate itself does not know; callers pass a :class:`TransferContext`
to :meth:`CandidateTree.grow` (the branch-and-bound search does).
Without one the cached factors are dropped and the bound estimator
falls back to a full rebuild, so hand-built candidates in tests keep
working unchanged.
"""

from __future__ import annotations

from bisect import insort
from typing import Callable, Dict, FrozenSet, List, Optional, Tuple

from ..exceptions import SearchError
from ..graph.datagraph import DataGraph
from ..model.jtt import JoinedTupleTree, canonical_edge
from ..text.matcher import MatchSets

#: Hashable identity of a candidate: (root, tree).
Signature = Tuple[int, JoinedTupleTree]

#: Per-node transfer factor lists with the current root's split freed:
#: ``node -> ((neighbor, tau(node -> neighbor)), ...)``.  Stored per node
#: (rather than per directed edge) so grow/merge can share the untouched
#: nodes' tuples with the parent candidate and the bound's delivery
#: passes iterate factor lists without hashing edge tuples.
TransferMap = Dict[int, Tuple[Tuple[int, float], ...]]


class TransferContext:
    """What incremental transfer maintenance needs from the query context.

    Attributes:
        graph: the data graph (raw directed edge weights).
        rate: the dampening-rate function ``node -> d_node``.
    """

    __slots__ = ("graph", "rate")

    def __init__(
        self, graph: DataGraph, rate: Callable[[int], float]
    ) -> None:
        self.graph = graph
        self.rate = rate


def _merge_sorted(
    a: Tuple[int, ...], b: Tuple[int, ...], drop_duplicates: bool = False
) -> Tuple[int, ...]:
    """Linear merge of two sorted tuples (optionally deduplicating)."""
    out: List[int] = []
    i = j = 0
    la, lb = len(a), len(b)
    while i < la and j < lb:
        if a[i] < b[j]:
            out.append(a[i])
            i += 1
        elif b[j] < a[i]:
            out.append(b[j])
            j += 1
        else:
            out.append(a[i])
            i += 1
            if drop_duplicates:
                j += 1
            else:
                out.append(b[j])
                j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return tuple(out)


class CandidateTree:
    """An immutable rooted candidate tree with cached search bookkeeping.

    Attributes:
        tree: the underlying (rootless) tree.
        root: the root node id.
        depth: maximum root-to-node distance.
        diameter: the tree's diameter (maintained incrementally).
        covered: keywords covered by the tree's nodes.
        transfer: incrementally maintained transfer factors (see the
            module docstring), or None when the candidate was built
            without a :class:`TransferContext`.
        cached_ub: the latest admissible upper bound the search computed
            for this candidate (cheap or tight) — the seed of its
            children's inherited bounds under lazy evaluation.
    """

    __slots__ = (
        "tree", "root", "depth", "diameter", "covered",
        "transfer", "cached_ub",
        "_signature", "_sorted_nodes", "_sorted_edges", "_sources",
    )

    def __init__(
        self,
        tree: JoinedTupleTree,
        root: int,
        depth: int,
        diameter: int,
        covered: FrozenSet[str],
        transfer: Optional[TransferMap] = None,
    ) -> None:
        if root not in tree.nodes:
            raise SearchError(f"root {root} not in candidate tree")
        self.tree = tree
        self.root = root
        self.depth = depth
        self.diameter = diameter
        self.covered = covered
        self.transfer = transfer
        self.cached_ub: Optional[float] = None
        self._signature: Optional[Signature] = None
        self._sorted_nodes: Optional[Tuple[int, ...]] = None
        self._sorted_edges: Optional[Tuple[Tuple[int, int], ...]] = None
        self._sources: Optional[Tuple[int, ...]] = None

    # -------------------------------------------------------- construction

    @classmethod
    def initial(cls, node: int, match: MatchSets) -> "CandidateTree":
        """The single-node candidate for a non-free node."""
        keywords = match.keywords_of.get(node)
        if not keywords:
            raise SearchError(
                f"initial candidates must be non-free nodes, got {node}"
            )
        cand = cls(
            JoinedTupleTree.single(node), node, 0, 0, keywords, {node: ()}
        )
        cand._sorted_nodes = (node,)
        cand._sorted_edges = ()
        cand._sources = (node,)
        return cand

    @classmethod
    def from_arena(cls, arena, cid: int, match: MatchSets) -> "CandidateTree":
        """Rebuild a validating candidate from one arena row.

        The cross-check bridge between the engines: the node/edge
        slices of :class:`~repro.search.arena.CandidateArena` row
        ``cid`` run through the *validating* tree constructor, coverage
        is recomputed from the match sets, and the transfer factors are
        left unset so the bound estimator rebuilds them from scratch —
        the arena's deferred factor lists and cover masks are exactly
        what this constructor does **not** trust.
        """
        nodes = list(arena.nodes_of(cid))
        edges = [
            (code >> 32, code & 0xFFFFFFFF) for code in arena.edges_of(cid)
        ]
        tree = JoinedTupleTree(nodes, edges)
        return cls(
            tree,
            arena.root[cid],
            arena.depth[cid],
            arena.diameter[cid],
            match.covered_by(tree.nodes),
        )

    def grow(
        self,
        new_root: int,
        match: MatchSets,
        ctx: Optional[TransferContext] = None,
    ) -> "CandidateTree":
        """Tree growing: ``new_root`` adopts this tree as its only child.

        The caller is responsible for checking graph adjacency between
        ``new_root`` and the current root (the search does this against
        the data graph); this method checks only tree-level validity.
        With a ``ctx`` the child's transfer factors are derived from this
        candidate's: only the old root's factor list changes (its split
        denominator now includes the new edge) plus the new root's
        one-entry list; every other node's list is shared.
        """
        if new_root in self.tree.nodes:
            raise SearchError(f"grow target {new_root} already in tree")
        old_root = self.root
        tree = self.tree.with_edge(old_root, new_root)
        depth = self.depth + 1
        diameter = max(self.diameter, depth)
        new_keywords = match.keywords_of.get(new_root, frozenset())
        covered = self.covered | new_keywords
        transfer: Optional[TransferMap] = None
        if ctx is not None and self.transfer is not None:
            rate = ctx.rate
            out = ctx.graph.out_edges(old_root)
            neighbors = sorted(tree.neighbors(old_root))
            transfer = dict(self.transfer)
            den = 0.0
            for b in neighbors:
                den += out.get(b, 0.0)
            if den > 0.0:
                transfer[old_root] = tuple(
                    (b, out.get(b, 0.0) / den * rate(b)) for b in neighbors
                )
            else:
                transfer[old_root] = tuple((b, 0.0) for b in neighbors)
            transfer[new_root] = ((old_root, rate(old_root)),)
        child = CandidateTree(tree, new_root, depth, diameter, covered,
                              transfer)
        nodes = list(self.sorted_nodes)
        insort(nodes, new_root)
        child._sorted_nodes = tuple(nodes)
        edges = list(self.sorted_edges)
        insort(edges, canonical_edge(old_root, new_root))
        child._sorted_edges = tuple(edges)
        if self._sources is not None:
            if new_keywords:
                sources = list(self._sources)
                insort(sources, new_root)
                child._sources = tuple(sources)
            else:
                child._sources = self._sources
        return child

    def merge(
        self,
        other: "CandidateTree",
        strict: bool = False,
    ) -> Optional["CandidateTree"]:
        """Tree merging; returns None when the merge is not permitted.

        Permitted when both candidates share the root, their node sets are
        otherwise disjoint (the paper's cycle "sanity check"), and — in
        strict mode — the union covers strictly more keywords than either
        operand.  The merged transfer map is the union of the operands':
        non-root nodes keep their frozen neighborhoods, and the shared
        root's factor list is the concatenation of both operands' (each
        already freed), so nothing needs recomputing.
        """
        if self.root != other.root:
            return None
        if self.tree.nodes & other.tree.nodes != {self.root}:
            return None
        covered = self.covered | other.covered
        if strict and (covered == self.covered or covered == other.covered):
            return None
        tree = self.tree.union(other.tree)
        depth = max(self.depth, other.depth)
        diameter = max(
            self.diameter, other.diameter, self.depth + other.depth
        )
        transfer: Optional[TransferMap] = None
        if self.transfer is not None and other.transfer is not None:
            transfer = {**self.transfer, **other.transfer}
            transfer[self.root] = (
                self.transfer[self.root] + other.transfer[self.root]
            )
        merged = CandidateTree(tree, self.root, depth, diameter, covered,
                               transfer)
        merged._sorted_nodes = _merge_sorted(
            self.sorted_nodes, other.sorted_nodes, drop_duplicates=True
        )
        merged._sorted_edges = _merge_sorted(
            self.sorted_edges, other.sorted_edges
        )
        if self._sources is not None and other._sources is not None:
            # The operands overlap in the root alone; dedup handles it
            # whether or not the root is itself a source.
            merged._sources = _merge_sorted(
                self._sources, other._sources, drop_duplicates=True
            )
        return merged

    # ------------------------------------------------------------ queries

    @property
    def sorted_nodes(self) -> Tuple[int, ...]:
        """Ascending node ids, memoized (the heap-key tuple)."""
        cached = self._sorted_nodes
        if cached is None:
            cached = tuple(sorted(self.tree.nodes))
            self._sorted_nodes = cached
        return cached

    @property
    def sorted_edges(self) -> Tuple[Tuple[int, int], ...]:
        """Ascending canonical edges, memoized (the heap-key tuple)."""
        cached = self._sorted_edges
        if cached is None:
            cached = tuple(sorted(self.tree.edges))
            self._sorted_edges = cached
        return cached

    def sources(self, match: MatchSets) -> Tuple[int, ...]:
        """Ascending non-free (keyword-covering) nodes, memoized.

        Maintained incrementally by :meth:`initial`/:meth:`grow`/
        :meth:`merge`; hand-built candidates compute it from the tree on
        first access.  Equals ``tuple(tree.non_free_nodes(match))``.
        """
        cached = self._sources
        if cached is None:
            cached = tuple(self.tree.non_free_nodes(match))
            self._sources = cached
        return cached

    def signature(self) -> Signature:
        """Hashable identity (root + tree), memoized."""
        cached = self._signature
        if cached is None:
            cached = (self.root, self.tree)
            self._signature = cached
        return cached

    def is_complete(self, match: MatchSets) -> bool:
        """Covers every query keyword."""
        return self.covered == frozenset(match.keywords)

    def is_answer(
        self,
        match: MatchSets,
        max_diameter: int,
        semantics: str = "and",
    ) -> bool:
        """Answer validity: coverage per semantics, reduced, within cap.

        Under the paper's AND semantics every keyword must be covered
        (Definition 3); under OR semantics any non-empty coverage counts
        (candidates always cover at least one keyword).
        """
        if semantics == "and" and not self.is_complete(match):
            return False
        return (
            self.diameter <= max_diameter
            and self.tree.is_reduced(match)
        )

    def __len__(self) -> int:
        return len(self.tree.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Candidate(root={self.root}, nodes={sorted(self.tree.nodes)}, "
            f"covered={sorted(self.covered)})"
        )
