"""Candidate trees and the grow/merge expansion operators (Section IV-B).

A candidate tree ``C(v_i)`` is a rooted tree covering at least one query
keyword.  The two expansion operators come from Ding et al.'s dynamic
programming:

* **grow** — a neighbor ``v_j ∉ C`` of the root becomes the new root with
  the old tree as its single child;
* **merge** — two candidates with the same root and otherwise disjoint
  node sets are unioned.

These operators maintain the key invariant the upper bounds rely on: once
a node stops being the root, its tree neighborhood is frozen — any later
expansion attaches only at the current root.

The paper's merge precondition ("the result covers more keywords than
either") is optional (``strict``): DESIGN.md explains why the permissive
variant is required for completeness over Definition-3 answers.
"""

from __future__ import annotations

from typing import FrozenSet, Optional, Tuple

from ..exceptions import SearchError
from ..model.jtt import JoinedTupleTree
from ..text.matcher import MatchSets

#: Hashable identity of a candidate: (root, tree).
Signature = Tuple[int, JoinedTupleTree]


class CandidateTree:
    """An immutable rooted candidate tree with cached search bookkeeping.

    Attributes:
        tree: the underlying (rootless) tree.
        root: the root node id.
        depth: maximum root-to-node distance.
        diameter: the tree's diameter (maintained incrementally).
        covered: keywords covered by the tree's nodes.
    """

    __slots__ = ("tree", "root", "depth", "diameter", "covered")

    def __init__(
        self,
        tree: JoinedTupleTree,
        root: int,
        depth: int,
        diameter: int,
        covered: FrozenSet[str],
    ) -> None:
        if root not in tree.nodes:
            raise SearchError(f"root {root} not in candidate tree")
        self.tree = tree
        self.root = root
        self.depth = depth
        self.diameter = diameter
        self.covered = covered

    # -------------------------------------------------------- construction

    @classmethod
    def initial(cls, node: int, match: MatchSets) -> "CandidateTree":
        """The single-node candidate for a non-free node."""
        keywords = match.keywords_of.get(node)
        if not keywords:
            raise SearchError(
                f"initial candidates must be non-free nodes, got {node}"
            )
        return cls(JoinedTupleTree.single(node), node, 0, 0, keywords)

    def grow(self, new_root: int, match: MatchSets) -> "CandidateTree":
        """Tree growing: ``new_root`` adopts this tree as its only child.

        The caller is responsible for checking graph adjacency between
        ``new_root`` and the current root (the search does this against
        the data graph); this method checks only tree-level validity.
        """
        if new_root in self.tree.nodes:
            raise SearchError(f"grow target {new_root} already in tree")
        tree = self.tree.with_edge(self.root, new_root)
        depth = self.depth + 1
        diameter = max(self.diameter, depth)
        covered = self.covered | match.keywords_of.get(new_root, frozenset())
        return CandidateTree(tree, new_root, depth, diameter, covered)

    def merge(
        self,
        other: "CandidateTree",
        strict: bool = False,
    ) -> Optional["CandidateTree"]:
        """Tree merging; returns None when the merge is not permitted.

        Permitted when both candidates share the root, their node sets are
        otherwise disjoint (the paper's cycle "sanity check"), and — in
        strict mode — the union covers strictly more keywords than either
        operand.
        """
        if self.root != other.root:
            return None
        if self.tree.nodes & other.tree.nodes != {self.root}:
            return None
        covered = self.covered | other.covered
        if strict and (covered == self.covered or covered == other.covered):
            return None
        tree = self.tree.union(other.tree)
        depth = max(self.depth, other.depth)
        diameter = max(
            self.diameter, other.diameter, self.depth + other.depth
        )
        return CandidateTree(tree, self.root, depth, diameter, covered)

    # ------------------------------------------------------------ queries

    def signature(self) -> Signature:
        """Hashable identity (root + tree)."""
        return (self.root, self.tree)

    def is_complete(self, match: MatchSets) -> bool:
        """Covers every query keyword."""
        return self.covered == frozenset(match.keywords)

    def is_answer(
        self,
        match: MatchSets,
        max_diameter: int,
        semantics: str = "and",
    ) -> bool:
        """Answer validity: coverage per semantics, reduced, within cap.

        Under the paper's AND semantics every keyword must be covered
        (Definition 3); under OR semantics any non-empty coverage counts
        (candidates always cover at least one keyword).
        """
        if semantics == "and" and not self.is_complete(match):
            return False
        return (
            self.diameter <= max_diameter
            and self.tree.is_reduced(match)
        )

    def __len__(self) -> int:
        return len(self.tree.nodes)

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return (
            f"Candidate(root={self.root}, nodes={sorted(self.tree.nodes)}, "
            f"covered={sorted(self.covered)})"
        )
