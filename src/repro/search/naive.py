"""The naive search algorithm (Section IV-A).

Breadth-first search is performed from every non-free node up to distance
``ceil(D / 2)``, recording, at every visited node, the source, distance,
and *all* shortest-path predecessors.  Any node reachable from a set of
non-free nodes that jointly cover the query becomes an answer-tree root;
answers are assembled by combining one path per chosen source, in every
combination.

This is intentionally the paper's expensive strawman: it expands every
non-free node exhaustively before assembling anything (Fig. 10 measures
exactly that cost against branch-and-bound).  A ``max_answers_per_root``
valve exists so the benchmark harness can keep runtimes finite on larger
samples; the paper's uncapped behavior is the default.
"""

from __future__ import annotations

import itertools
from typing import Dict, FrozenSet, Iterator, List, Optional, Set, Tuple

from ..config import SearchParams
from ..exceptions import InvalidTreeError, SearchError
from ..graph.datagraph import DataGraph
from ..graph.traversal import bfs_within
from ..model.answer import RankedAnswer, RankedList
from ..model.jtt import JoinedTupleTree
from ..rwmp.scoring import RWMPScorer
from ..text.matcher import MatchSets


class NaiveSearch:
    """The brute-force top-k search of Section IV-A.

    Args:
        graph: the data graph.
        scorer: the query's RWMP scorer.
        match: the query's match sets.
        params: search parameters (k and diameter cap are used).
        max_paths_per_source: cap on enumerated shortest paths from a root
            to one source (0 = unlimited).
        max_answers_per_root: cap on assembled trees per root
            (0 = unlimited, the paper's behavior).
    """

    def __init__(
        self,
        graph: DataGraph,
        scorer: RWMPScorer,
        match: MatchSets,
        params: Optional[SearchParams] = None,
        max_paths_per_source: int = 0,
        max_answers_per_root: int = 0,
    ) -> None:
        if scorer.match is not match:
            raise SearchError("scorer and search must share the match sets")
        self.graph = graph
        self.scorer = scorer
        self.match = match
        self.params = params or SearchParams()
        self.max_paths_per_source = max_paths_per_source
        self.max_answers_per_root = max_answers_per_root

    # --------------------------------------------------------------- public

    def run(self) -> List[RankedAnswer]:
        """Execute the naive algorithm; returns the top-k, best first."""
        top_k = RankedList(self.params.k)
        for tree in self.iter_answers():
            top_k.offer(RankedAnswer(tree, self.scorer.score(tree)))
        return top_k.as_list()

    def iter_answers(self) -> Iterator[JoinedTupleTree]:
        """Yield every distinct valid answer the BFS assembly reaches.

        This is the scoring-free core of the algorithm, also used by the
        evaluation harness to build per-query candidate pools that every
        ranking function ranks identically (IR pooling).
        """
        params = self.params
        radius = (params.diameter + 1) // 2
        seen: Set[JoinedTupleTree] = set()

        # Phase 1: BFS from every non-free node, all predecessors kept.
        preds_of: Dict[int, Dict[int, List[int]]] = {}
        reach: Dict[int, Set[int]] = {}
        for source in sorted(self.match.all_nodes):
            preds = bfs_within(self.graph, source, radius)
            preds_of[source] = preds
            for node in preds:
                reach.setdefault(node, set()).add(source)

        # Phase 2: roots covering all keywords assemble answers.
        all_keywords = frozenset(self.match.keywords)
        for root in sorted(reach):
            sources = reach[root]
            if self.match.covered_by(sources) != all_keywords:
                continue
            produced = 0
            capped = False
            for combo in self._covering_combinations(sources):
                if capped:
                    break
                for tree in self._assemble(root, combo, preds_of):
                    if tree in seen:
                        continue
                    seen.add(tree)
                    if tree.diameter > params.diameter:
                        continue
                    if not tree.is_reduced(self.match):
                        continue
                    if not tree.covers(self.match):
                        continue
                    yield tree
                    produced += 1
                    if (
                        self.max_answers_per_root
                        and produced >= self.max_answers_per_root
                    ):
                        capped = True
                        break

    # -------------------------------------------------------------- pieces

    def _covering_combinations(
        self, sources: Set[int]
    ) -> Iterator[Tuple[int, ...]]:
        """All minimal-ish source combinations covering every keyword.

        One source is chosen per keyword (a source matching several
        keywords may be chosen for each); the resulting sets are
        de-duplicated.
        """
        per_keyword: List[List[int]] = []
        for keyword in self.match.keywords:
            matching = sorted(
                s for s in sources
                if keyword in self.match.keywords_of.get(s, frozenset())
            )
            if not matching:
                return
            per_keyword.append(matching)
        emitted: Set[FrozenSet[int]] = set()
        for picks in itertools.product(*per_keyword):
            combo = frozenset(picks)
            if combo not in emitted:
                emitted.add(combo)
                yield tuple(sorted(combo))

    def _assemble(
        self,
        root: int,
        combo: Tuple[int, ...],
        preds_of: Dict[int, Dict[int, List[int]]],
    ) -> Iterator[JoinedTupleTree]:
        """Yield all trees formed by one shortest path per source."""
        path_options: List[List[List[int]]] = []
        for source in combo:
            paths = self._paths(root, source, preds_of[source])
            if not paths:
                return
            path_options.append(paths)
        for selection in itertools.product(*path_options):
            try:
                yield JoinedTupleTree.from_paths(selection)
            except InvalidTreeError:
                continue  # overlapping paths formed a cycle; skip

    def _paths(
        self,
        root: int,
        source: int,
        preds: Dict[int, List[int]],
    ) -> List[List[int]]:
        """All shortest paths source..root from the predecessor DAG."""
        if root not in preds:
            return []
        out: List[List[int]] = []
        stack: List[List[int]] = [[root]]
        while stack:
            partial = stack.pop()
            tail = partial[-1]
            if tail == source:
                out.append(list(reversed(partial)))
                if (
                    self.max_paths_per_source
                    and len(out) >= self.max_paths_per_source
                ):
                    break
                continue
            for pred in preds[tail]:
                stack.append(partial + [pred])
        return out
