"""Flat candidate arena: columnar storage for the lazy search loop.

After PR 5 the lazy search admits ~6x more candidates than the eager
configuration ever evaluates, so per-candidate *admission* cost — object
allocation, tuple maintenance, dict-of-tuples transfer maps — dominates
the search phase.  This module replaces the per-object
:class:`~repro.search.candidate.CandidateTree` representation with a
**flat arena**: one :class:`CandidateArena` per search run holding every
candidate as a row across parallel ``array('q')``/``array('d')`` columns
(zero-copy viewable as numpy arrays via :meth:`CandidateArena.column`),
indexed by an integer candidate id.

Layout
------

Scalar columns (one entry per candidate): ``root``, ``depth``,
``diameter``, ``ub`` (latest admissible bound, cheap or tight),
``parent`` / ``partner`` (provenance: the grow parent, or both merge
operands), and the CSR descriptors below.  Set-valued state lives in
shared pools addressed by ``(start, len)`` slices:

* ``node_pool`` — ascending node ids (``node_start``/``node_len``);
* ``edge_pool`` — ascending packed edge codes ``(min << 32) | max``
  (``edge_start``/``edge_len``); sorting codes equals sorting canonical
  ``(a, b)`` tuples, so slices merge with integer comparisons only;
* ``src_pool`` — ascending non-free node ids (``src_start``/``src_len``);
* ``fmap_pool`` — per-node *factor-list ids*, parallel to the node
  slice (``fmap_start``, sentinel ``-1`` until the candidate is
  tightened); a factor-list id indexes the global
  ``flist_start``/``flist_len``/``flist_nbr``/``flist_tau`` table, so
  the bound's delivery passes iterate contiguous arrays instead of
  dict-of-tuples.  Structural sharing becomes *index reuse*: a grow
  child re-points at the parent's factor lists for every node except
  the old and new root, and a merge concatenates only the shared
  root's list.

Two Python-list side columns carry the per-candidate ``cover`` bitmask
(arbitrary keyword count) and the memoized little-endian byte images of
the node/edge slices, used both as dedup signatures and as heap-key
tie-break components (bytes compare lexicographically — a total order
over admitted candidates, though not the same order as the object
path's int tuples; Theorem 1 makes the returned top-k identical up to
tie classes either way, which is what the differential harness pins).

Admission is an array append; pruned or duplicate candidates are
reclaimed by :meth:`CandidateArena.rollback` to the
:meth:`CandidateArena.mark` taken at admission start.  Only the arena
*top* is ever rolled back — parents and merge partners are always
older, already-tightened rows — so no live heap entry or merge-partner
list can reference a reclaimed region (asserted when
``BranchAndBoundSearch._debug_validate`` is set).  ``AnytimeSnapshot``
carries ``arena_mark = len(arena)``, an O(1) high-water version stamp.

The factor lists of a candidate are **deferred**: they are built at
tighten time from the parent's lists (parents and merge operands are
always tightened before they expand, so their lists exist), which keeps
the admit path free of per-node float work.  Admit-time bounding uses
the inherited parent bound capped by
:meth:`~repro.search.bounds.UpperBoundEstimator.admit_cap` — the
index-assisted completion cap (docs/ALGORITHMS.md §2.8).

See docs/PERFORMANCE.md §9 for the measured memory-per-candidate and
admission-throughput effects.
"""

from __future__ import annotations

import heapq
import time
from array import array
from bisect import insort
from typing import Dict, List, Tuple

from ..model.answer import RankedAnswer, RankedList

#: Sentinel for "no candidate" in the parent/partner columns and for a
#: not-yet-built factor map in ``fmap_start``.
NO_ID = -1

_LOW32 = 0xFFFFFFFF

#: Approximate CPython overhead charged per ``cover`` list entry in
#: :meth:`CandidateArena.nbytes` (small-int object + list slot).
_COVER_SLOT_BYTES = 36


def _keyword_mask(node_masks: Dict[int, int], node: int) -> int:
    """Keyword-coverage bitmask of one node.

    Module-level (rather than inlined in the engine) so the arena
    mutation tests can corrupt coverage bookkeeping on purpose and
    prove the differential harness notices a damaged cover slice.
    """
    return node_masks.get(node, 0)


def pack_edge(a: int, b: int) -> int:
    """Canonical undirected edge packed into one int64 code."""
    return (a << 32) | b if a <= b else (b << 32) | a


def unpack_edge(code: int) -> Tuple[int, int]:
    """The canonical ``(min, max)`` endpoints of a packed edge code."""
    return code >> 32, code & _LOW32


def _merge_sorted(a, b, dedup: bool = False) -> Tuple[List[int], int]:
    """Linear merge of two ascending int sequences.

    Returns ``(merged, shared)`` where ``shared`` counts values present
    in both inputs; with ``dedup`` those values appear once in the
    output (the merge operator's node/source union), otherwise twice
    (never used on overlapping inputs here).
    """
    out: List[int] = []
    i = j = 0
    la, lb = len(a), len(b)
    shared = 0
    while i < la and j < lb:
        x = a[i]
        y = b[j]
        if x < y:
            out.append(x)
            i += 1
        elif y < x:
            out.append(y)
            j += 1
        else:
            shared += 1
            out.append(x)
            i += 1
            if dedup:
                j += 1
            else:
                out.append(y)
                j += 1
    out.extend(a[i:])
    out.extend(b[j:])
    return out, shared


class CandidateArena:
    """Columnar candidate storage for one search run (see module doc).

    All columns and pools are typed ``array`` buffers (``'q'`` int64 /
    ``'d'`` float64); :meth:`column` exposes any of them as a zero-copy
    numpy view for offline analysis and the CLI's ``--stats`` section.
    """

    #: int64 scalar columns, one entry per candidate.
    _INT_COLUMNS = (
        "root", "depth", "diameter", "parent", "partner",
        "node_start", "node_len", "edge_start", "edge_len",
        "src_start", "src_len", "fmap_start",
    )
    #: Shared int64 pools addressed by the CSR descriptors above.
    _INT_POOLS = (
        "node_pool", "edge_pool", "src_pool", "fmap_pool",
        "flist_start", "flist_len", "flist_nbr",
    )
    _FLOAT_ARRAYS = ("ub", "flist_tau")

    __slots__ = (
        _INT_COLUMNS + _INT_POOLS + _FLOAT_ARRAYS
        + ("cover", "node_bytes", "edge_bytes",
           "peak_bytes", "rollbacks", "_sig_bytes")
    )

    def __init__(self) -> None:
        for name in self._INT_COLUMNS + self._INT_POOLS:
            setattr(self, name, array("q"))
        for name in self._FLOAT_ARRAYS:
            setattr(self, name, array("d"))
        #: Per-candidate keyword-coverage bitmask (arbitrary precision).
        self.cover: List[int] = []
        #: Little-endian byte images of the node/edge slices — dedup
        #: signatures and heap-key tie-break components.
        self.node_bytes: List[bytes] = []
        self.edge_bytes: List[bytes] = []
        #: High-water mark of :meth:`nbytes` across the run.
        self.peak_bytes = 0
        #: Rollbacks performed (duplicate or pruned admissions).
        self.rollbacks = 0
        self._sig_bytes = 0

    # ------------------------------------------------------------ shape

    def __len__(self) -> int:
        """Number of live candidates (also the next candidate id)."""
        return len(self.root)

    def nbytes(self) -> int:
        """Approximate bytes held by all columns and pools, O(1)."""
        total = self._sig_bytes + _COVER_SLOT_BYTES * len(self.cover)
        for name in self._INT_COLUMNS + self._INT_POOLS:
            total += len(getattr(self, name)) * 8
        for name in self._FLOAT_ARRAYS:
            total += len(getattr(self, name)) * 8
        return total

    def column(self, name: str):
        """Zero-copy numpy view of one column or pool.

        The view aliases the live buffer: valid until the next append
        (array growth may reallocate), which is fine for the post-run
        analysis it exists for.
        """
        import numpy as np

        arr = getattr(self, name)
        if not isinstance(arr, array):
            raise TypeError(f"{name} is not an array column")
        dtype = np.int64 if arr.typecode == "q" else np.float64
        if len(arr) == 0:
            return np.empty(0, dtype=dtype)
        return np.frombuffer(arr, dtype=dtype)

    # ------------------------------------------------------- candidates

    def append_candidate(
        self,
        root: int,
        depth: int,
        diameter: int,
        nodes,
        edge_codes,
        srcs,
        cover: int,
        parent: int = NO_ID,
        partner: int = NO_ID,
    ) -> int:
        """Append one candidate row; returns its id.

        ``nodes``/``edge_codes``/``srcs`` must be ascending.  The bound
        column starts at 0.0 and the factor map unbuilt (``-1``); the
        engine fills both.
        """
        narr = array("q", nodes)
        earr = array("q", edge_codes)
        ns = len(self.node_pool)
        self.node_pool.extend(narr)
        es = len(self.edge_pool)
        self.edge_pool.extend(earr)
        ss = len(self.src_pool)
        self.src_pool.extend(array("q", srcs))
        nb = narr.tobytes()
        eb = earr.tobytes()
        cid = len(self.root)
        self.root.append(root)
        self.depth.append(depth)
        self.diameter.append(diameter)
        self.parent.append(parent)
        self.partner.append(partner)
        self.node_start.append(ns)
        self.node_len.append(len(narr))
        self.edge_start.append(es)
        self.edge_len.append(len(earr))
        self.src_start.append(ss)
        self.src_len.append(len(srcs))
        self.fmap_start.append(NO_ID)
        self.ub.append(0.0)
        self.cover.append(cover)
        self.node_bytes.append(nb)
        self.edge_bytes.append(eb)
        self._sig_bytes += len(nb) + len(eb)
        size = self.nbytes()
        if size > self.peak_bytes:
            self.peak_bytes = size
        return cid

    def nodes_of(self, cid: int):
        """The ascending node-id slice of one candidate (a fresh array)."""
        start = self.node_start[cid]
        return self.node_pool[start:start + self.node_len[cid]]

    def edges_of(self, cid: int):
        """The ascending packed-edge slice of one candidate."""
        start = self.edge_start[cid]
        return self.edge_pool[start:start + self.edge_len[cid]]

    def sources_of(self, cid: int):
        """The ascending non-free-node slice of one candidate."""
        start = self.src_start[cid]
        return self.src_pool[start:start + self.src_len[cid]]

    # ----------------------------------------------------- factor lists

    def add_flist(self, nbrs, taus) -> int:
        """Append one factor list ``(neighbors, transfer factors)``."""
        fid = len(self.flist_start)
        self.flist_start.append(len(self.flist_nbr))
        self.flist_len.append(len(nbrs))
        self.flist_nbr.extend(nbrs)
        self.flist_tau.extend(taus)
        return fid

    def set_fmap(self, cid: int, flist_ids) -> None:
        """Attach the per-node factor-list ids (parallel to the node
        slice) of one candidate."""
        start = len(self.fmap_pool)
        self.fmap_pool.extend(flist_ids)
        self.fmap_start[cid] = start

    def fmap_of(self, cid: int) -> Dict[int, int]:
        """``node -> factor-list id`` for one tightened candidate."""
        ns = self.node_start[cid]
        nl = self.node_len[cid]
        fs = self.fmap_start[cid]
        return dict(zip(
            self.node_pool[ns:ns + nl], self.fmap_pool[fs:fs + nl]
        ))

    # -------------------------------------------------- mark / rollback

    def mark(self) -> Tuple[int, ...]:
        """Snapshot of every column/pool length, for :meth:`rollback`."""
        return (
            len(self.root),
            len(self.node_pool),
            len(self.edge_pool),
            len(self.src_pool),
            len(self.fmap_pool),
            len(self.flist_start),
            len(self.flist_nbr),
            self._sig_bytes,
        )

    def rollback(self, mark: Tuple[int, ...]) -> None:
        """Reclaim every row and pool entry appended since ``mark``.

        Safe by construction in the engine: only the admission in
        progress (the arena top) is ever rolled back, so no live heap
        entry or merge-partner id can point into the reclaimed region.
        """
        n, np_, ep, sp, fp, fls, fln, sig = mark
        for name in self._INT_COLUMNS:
            arr = getattr(self, name)
            del arr[n:]
        del self.ub[n:]
        del self.cover[n:]
        del self.node_bytes[n:]
        del self.edge_bytes[n:]
        del self.node_pool[np_:]
        del self.edge_pool[ep:]
        del self.src_pool[sp:]
        del self.fmap_pool[fp:]
        del self.flist_start[fls:]
        del self.flist_len[fls:]
        del self.flist_nbr[fln:]
        del self.flist_tau[fln:]
        self._sig_bytes = sig
        self.rollbacks += 1


def arena_snapshots(search, heartbeat: int = 0):
    """The arena-backed lazy search loop (Algorithm 1, engine="arena").

    A generator with the exact contract of
    :meth:`BranchAndBoundSearch.snapshots` (including the ``heartbeat``
    cadence for deadline-bounded consumers), dispatched to when
    ``params.lazy_bounds and params.engine == "arena"``.  Control flow
    mirrors the object path statement for statement — same admission
    order (diameter prune, signature dedup, answer offer, distance
    prune, bound, Lemma-1 prune, registration, push), same stop rule,
    head tightening, re-push and merge-partner discipline — so the two
    engines return identical top-k up to tie classes (pinned by the
    differential harness).  Only the candidate representation differs:
    rows in a :class:`CandidateArena` instead of ``CandidateTree``
    objects, with heap entries carrying integer candidate ids.
    """
    from .branch_and_bound import AnytimeSnapshot

    params = search.params
    stats = search.stats
    match = search.match
    scorer = search.scorer
    bounds = search.bounds
    graph = search.graph
    compiled = search._compiled
    rate = scorer.dampening.rate
    semantics = params.semantics
    max_diameter = params.diameter
    strict = params.strict_merge
    use_cap = search.use_admit_cap and semantics == "and"
    debug = search._debug_validate
    per_keyword = match.per_keyword
    index = bounds.index
    cheap_bound = search._cheap_bound
    admit_cap = bounds.admit_cap
    perf = time.perf_counter

    keywords = list(match.keywords)
    kw_bit = {k: 1 << i for i, k in enumerate(keywords)}
    node_masks: Dict[int, int] = {}
    for node, kws in match.keywords_of.items():
        m = 0
        for k in kws:
            m |= kw_bit[k]
        node_masks[node] = m
    all_mask = (1 << len(keywords)) - 1
    #: cover mask -> tuple of missing keywords, in ``match.keywords``
    #: order (deterministic, unlike frozenset iteration).
    missing_memo: Dict[int, Tuple[str, ...]] = {}

    def missing_of(cover: int) -> Tuple[str, ...]:
        got = missing_memo.get(cover)
        if got is None:
            got = tuple(k for k in keywords if not (cover & kw_bit[k]))
            missing_memo[cover] = got
        return got

    arena = CandidateArena()
    search.last_arena = arena
    search.last_proven = False
    stats.engine = "arena"
    top_k = RankedList(params.k)
    heap: List = []
    seen = set()
    by_root: Dict[int, List[int]] = {}

    def check_live() -> None:
        """Debug invariant: no live reference into a rolled-back region."""
        n = len(arena)
        assert all(entry[2] < n for entry in heap), (
            "heap entry references a rolled-back arena region"
        )
        assert all(c < n for lst in by_root.values() for c in lst), (
            "merge-partner list references a rolled-back arena region"
        )
        assert len(arena.node_bytes) == n and len(arena.cover) == n

    def materialize(cid: int):
        """A trusted :class:`JoinedTupleTree` of one candidate row.

        Treeness is guaranteed by construction (grow attaches a leaf,
        merge unions at the shared root), exactly the cases the trusted
        constructor exists for.
        """
        from ..model.jtt import JoinedTupleTree

        nodes = frozenset(arena.nodes_of(cid))
        adj: Dict[int, List[int]] = {n: [] for n in nodes}
        edges = set()
        for code in arena.edges_of(cid):
            a = code >> 32
            b = code & _LOW32
            edges.add((a, b))
            adj[a].append(b)
            adj[b].append(a)
        return JoinedTupleTree._trusted(
            nodes, frozenset(edges),
            {n: frozenset(s) for n, s in adj.items()},
        )

    # ------------------------------------------------------- tightening

    def build_fmap(cid: int) -> None:
        """Construct the deferred factor lists of one candidate.

        Parents and merge operands are always tightened before they
        expand, so their factor maps exist; only the root(s) whose
        neighborhoods changed get fresh lists — every other node
        re-points at the parent's list (structural sharing as index
        reuse).
        """
        parent = arena.parent[cid]
        partner = arena.partner[cid]
        root = arena.root[cid]
        nodes = arena.nodes_of(cid)
        if parent == NO_ID:
            # Initial single-node candidate: one empty factor list.
            arena.set_fmap(cid, [arena.add_flist((), ())])
            return
        pf = arena.fmap_of(parent)
        if partner != NO_ID:
            # Merge: the shared root's list is the concatenation of
            # both operands' (each already split-freed); every other
            # node keeps its frozen neighborhood.
            qf = arena.fmap_of(partner)
            fa = pf[root]
            fb = qf[root]
            sa = arena.flist_start[fa]
            sb = arena.flist_start[fb]
            la = arena.flist_len[fa]
            lb = arena.flist_len[fb]
            root_fid = arena.add_flist(
                arena.flist_nbr[sa:sa + la] + arena.flist_nbr[sb:sb + lb],
                arena.flist_tau[sa:sa + la] + arena.flist_tau[sb:sb + lb],
            )
            arena.set_fmap(cid, [
                root_fid if n == root else pf[n] if n in pf else qf[n]
                for n in nodes
            ])
            return
        # Grow: the old root's split denominator gains the new edge, and
        # the new root gets its one-entry list.
        old_root = arena.root[parent]
        old_fid = pf[old_root]
        fs = arena.flist_start[old_fid]
        fl = arena.flist_len[old_fid]
        nbrs = list(arena.flist_nbr[fs:fs + fl])
        insort(nbrs, root)
        out = graph.out_edges(old_root)
        den = 0.0
        for b in nbrs:
            den += out.get(b, 0.0)
        if den > 0.0:
            taus = [out.get(b, 0.0) / den * rate(b) for b in nbrs]
        else:
            taus = [0.0] * len(nbrs)
        new_old = arena.add_flist(nbrs, taus)
        new_root = arena.add_flist((old_root,), (rate(old_root),))
        arena.set_fmap(cid, [
            new_root if n == root
            else new_old if n == old_root
            else pf[n]
            for n in nodes
        ])

    flist_start = arena.flist_start
    flist_len = arena.flist_len
    flist_nbr = arena.flist_nbr
    flist_tau = arena.flist_tau

    def tighten(cid: int) -> float:
        """The full ``ce/pe`` bound of one row (mirrors ``upper_bound``).

        Identical float operations in the same order as the object
        path's factor-list bound, reading contiguous ``flist`` arrays;
        deferred factor lists are built here first.
        """
        t0 = perf()
        if arena.fmap_start[cid] == NO_ID:
            build_fmap(cid)
        root = arena.root[cid]
        sources = arena.sources_of(cid)
        n_sources = len(sources)
        gen = scorer.generation
        d_root = rate(root)
        fid_of = arena.fmap_of(cid)

        def deliver(source: int, initial: float) -> Dict[int, float]:
            out: Dict[int, float] = {}
            if initial <= 0.0:
                return out
            stack = [(source, -1, initial)]
            while stack:
                node, par, value = stack.pop()
                f = fid_of[node]
                s = flist_start[f]
                for i in range(s, s + flist_len[f]):
                    nbr = flist_nbr[i]
                    if nbr != par:
                        kept = value * flist_tau[i]
                        out[nbr] = kept
                        if flist_len[fid_of[nbr]] > 1:
                            stack.append((nbr, node, kept))
            return out

        gens = []
        fbar = []
        fbar_to_root_min = float("inf")
        for u in sources:
            g = gen(u)
            gens.append(g)
            delivered = deliver(u, g)
            fbar.append(delivered)
            to_root = g if u == root else delivered.get(root, 0.0)
            if to_root < fbar_to_root_min:
                fbar_to_root_min = to_root

        missing = (
            () if semantics == "or" else missing_of(arena.cover[cid])
        )
        if missing or n_sources == 1:
            inside = deliver(root, 1.0)
            inside[root] = 1.0
        else:
            inside = {}
        node_set = set(arena.nodes_of(cid))
        g_of = {
            k: bounds._best_outside_gen(k, node_set, root, d_root)
            for k in missing
        }

        total = 0.0
        for i in range(n_sources):
            v = sources[i]
            best = float("inf")
            for j in range(n_sources):
                if j != i:
                    val = fbar[j].get(v, 0.0)
                    if val < best:
                        best = val
            if missing:
                inside_v = inside.get(v, 0.0)
                for k in missing:
                    term = g_of[k] * inside_v
                    if term < best:
                        best = term
            if best == float("inf"):
                # Lone complete source (see upper_bound): T may equal C,
                # or gain sources whose deliveries bound v's new min.
                outside_best = max(
                    (
                        bounds._best_outside_gen(k, node_set, root, d_root)
                        for k in match.keywords
                    ),
                    default=0.0,
                )
                best = max(gens[i], outside_best * inside.get(v, 0.0))
            total += best
        ce = total / n_sources
        pe = bounds._potential_estimate(
            root, node_set, fbar_to_root_min, missing
        )
        ub = max(ce, pe)
        arena.ub[cid] = ub
        stats.bound_seconds += perf() - t0
        stats.bound_evals += 1
        return ub

    # -------------------------------------------------------- admission

    def admit(root, depth, diameter, nodes, edge_codes, srcs, cover,
              parent, partner, inherited):
        """Admit one candidate built from ascending component lists.

        Mirrors the object path's ``admit`` closure; ``inherited`` is
        None for the tight-bounded initial candidates.  Returns the new
        candidate id, or None when pruned or duplicate (the appended
        row is then rolled back).
        """
        stats.generated += 1
        if diameter > max_diameter:
            stats.pruned_diameter += 1
            return None
        mark = arena.mark()
        cid = arena.append_candidate(
            root, depth, diameter, nodes, edge_codes, srcs, cover,
            parent, partner,
        )
        sig = (root, arena.node_bytes[cid], arena.edge_bytes[cid])
        if sig in seen:
            arena.rollback(mark)
            if debug:
                check_live()
            return None
        seen.add(sig)
        if semantics == "or" or cover == all_mask:
            # Answer check: complete (per semantics) and reduced —
            # every tree leaf covers a keyword.  Degrees come straight
            # from the edge slice.
            if len(nodes) == 1:
                reduced = _keyword_mask(node_masks, nodes[0]) != 0
            else:
                deg: Dict[int, int] = {}
                for code in edge_codes:
                    a = code >> 32
                    b = code & _LOW32
                    deg[a] = deg.get(a, 0) + 1
                    deg[b] = deg.get(b, 0) + 1
                reduced = all(
                    deg[n] > 1 or _keyword_mask(node_masks, n)
                    for n in nodes
                )
            if reduced:
                t0 = perf()
                tree = materialize(cid)
                answer = RankedAnswer(tree, scorer.score(tree))
                stats.score_seconds += perf() - t0
                stats.answers_found += 1
                top_k.offer(answer)
        missing = () if semantics == "or" else missing_of(cover)
        if missing:
            # completion_impossible, arena-native: O(n * |M|) membership
            # scans over the (small) node list instead of building
            # per-keyword outside lists from scratch.
            impossible = False
            budget = max_diameter - depth
            for k in missing:
                outside = [
                    n for n in per_keyword.get(k, ()) if n not in nodes
                ]
                if not outside:
                    impossible = True  # keyword cannot be supplied
                    break
                if index is None:
                    continue
                if budget < 1 or all(
                    bounds._index_distance(root, n) > budget
                    for n in outside
                ):
                    impossible = True
                    break
            if impossible:
                stats.pruned_distance += 1
                arena.rollback(mark)
                if debug:
                    check_live()
                return None
        if inherited is not None:
            t0 = perf()
            ub = cheap_bound(inherited, None)
            if use_cap and missing:
                cap = admit_cap(root, missing, srcs)
                if cap < ub:
                    ub = cap
                    stats.admit_capped += 1
            stats.cheap_bound_seconds += perf() - t0
            arena.ub[cid] = ub
            tight = False
            stats.cheap_admissions += 1
        else:
            ub = tighten(cid)
            tight = True
        if top_k.full and ub <= top_k.min_score():
            # Lemma 1: nothing expandable from this row can beat the
            # kept top-k; reclaim it (the signature stays in `seen`,
            # matching the object path's drop-after-dedup semantics).
            stats.pruned_bound += 1
            arena.rollback(mark)
            if debug:
                check_live()
            return None
        if tight:
            by_root.setdefault(root, []).append(cid)
        heapq.heappush(heap, (
            (-ub, len(nodes), arena.node_bytes[cid], root,
             arena.edge_bytes[cid]),
            tight, cid,
        ))
        stats.enqueued += 1
        return cid

    # -------------------------------------------------------- expansion

    def expand(cid: int) -> None:
        """Grows and merges of one tightened row (lazy discipline)."""
        root = arena.root[cid]
        depth = arena.depth[cid]
        diam = arena.diameter[cid]
        parent_ub = arena.ub[cid]
        nodes = list(arena.nodes_of(cid))
        node_set = set(nodes)
        cover = arena.cover[cid]
        if depth + 1 <= max_diameter:
            edges = arena.edges_of(cid)
            srcs = arena.sources_of(cid)
            for neighbor in compiled.neighbors(root):
                if neighbor in node_set:
                    continue
                child_nodes = list(nodes)
                insort(child_nodes, neighbor)
                child_edges = list(edges)
                insort(child_edges, pack_edge(root, neighbor))
                nmask = _keyword_mask(node_masks, neighbor)
                if nmask:
                    child_srcs = list(srcs)
                    insort(child_srcs, neighbor)
                else:
                    child_srcs = srcs
                admit(
                    neighbor, depth + 1, max(diam, depth + 1),
                    child_nodes, child_edges, child_srcs,
                    cover | nmask, cid, NO_ID, parent_ub,
                )
        for partner in list(by_root.get(root, ())):
            if partner == cid:
                continue
            p_depth = arena.depth[partner]
            if depth + p_depth > max_diameter:
                # the merged tree would break the cap; skip before
                # paying for the union construction
                stats.generated += 1
                stats.pruned_diameter += 1
                continue
            p_cover = arena.cover[partner]
            merged_cover = cover | p_cover
            if strict and (
                merged_cover == cover or merged_cover == p_cover
            ):
                continue
            merged_nodes, shared = _merge_sorted(
                nodes, arena.nodes_of(partner), dedup=True
            )
            if shared != 1:
                continue  # operands overlap beyond the shared root
            merged_edges, _ = _merge_sorted(
                arena.edges_of(cid), arena.edges_of(partner)
            )
            merged_srcs, _ = _merge_sorted(
                arena.sources_of(cid), arena.sources_of(partner),
                dedup=True,
            )
            admit(
                root, max(depth, p_depth),
                max(diam, arena.diameter[partner], depth + p_depth),
                merged_nodes, merged_edges, merged_srcs, merged_cover,
                cid, partner, min(parent_ub, arena.ub[partner]),
            )

    # -------------------------------------------------------- main loop

    for node in sorted(match.all_nodes):
        admit(
            node, 0, 0, [node], [], [node],
            _keyword_mask(node_masks, node), NO_ID, NO_ID, None,
        )

    last_revision = -1
    proven = True
    frontier = float("-inf")
    ticks = 0
    while heap:
        key, tight, cid = heapq.heappop(heap)
        ub = -key[0]
        if top_k.full and ub <= top_k.min_score():
            stats.stopped_early = True
            frontier = ub
            break
        if params.max_candidates and stats.expanded >= params.max_candidates:
            proven = False
            frontier = ub
            break
        ticks += 1
        if heartbeat and ticks % heartbeat == 0:
            # Heartbeat snapshot (see BranchAndBoundSearch.snapshots):
            # the head's bound admissibly caps everything undiscovered.
            stats.snapshots_yielded += 1
            yield AnytimeSnapshot(
                answers=top_k.as_list(),
                frontier_bound=ub,
                proven_optimal=False,
                arena_mark=len(arena),
            )
        if not tight:
            t0 = perf()
            ub = tighten(cid)
            stats.tighten_seconds += perf() - t0
            stats.tightened += 1
            if top_k.full and ub <= top_k.min_score():
                stats.pruned_bound += 1
                continue
            by_root.setdefault(arena.root[cid], []).append(cid)
            if heap and ub < -heap[0][0][0]:
                heapq.heappush(
                    heap, ((-ub,) + key[1:], True, cid)
                )
                stats.repushed += 1
                continue
        if top_k.revision != last_revision:
            last_revision = top_k.revision
            stats.snapshots_yielded += 1
            yield AnytimeSnapshot(
                answers=top_k.as_list(),
                frontier_bound=ub,
                proven_optimal=False,
                arena_mark=len(arena),
            )
        stats.expanded += 1
        t0 = perf()
        expand(cid)
        stats.expand_seconds += perf() - t0

    stats.arena_candidates = len(arena)
    stats.arena_peak_bytes = arena.peak_bytes
    stats.arena_rollbacks = arena.rollbacks
    search.last_proven = proven
    stats.snapshots_yielded += 1
    yield AnytimeSnapshot(
        answers=top_k.as_list(),
        frontier_bound=frontier,
        proven_optimal=proven,
        arena_mark=len(arena),
    )
