"""Sharded branch-and-bound: per-shard searches merged at a coordinator.

``SearchParams.engine="sharded"`` partitions the data graph at
star-table cut points (:mod:`repro.graph.partition`) and runs the
arena-backed lazy branch-and-bound once per shard, merging the
per-shard top-k streams into one global
:class:`~repro.model.answer.RankedList` with *bound-based early
termination*: once the global list holds k answers, any shard whose
best remaining upper bound is at most the global k-th score is
cancelled — the same ``ub <= min_score`` rule the single-process stop
test uses, so the merged top-k stays tie-class-identical to the
single-process engines.

Exactness argument (the coordinator's Theorem-1 certificate):

1. Every shard is an induced subgraph, so every shard answer is a
   valid global answer with a bitwise-identical score (see
   :mod:`repro.graph.partition` for why scores are preserved exactly).
2. Every global answer has diameter at most ``D`` and therefore lies
   inside the halo-widened shard that owns any of its nodes — the
   union of shard answer spaces covers the global answer space.
3. A shard is only cancelled when the global list is full and the
   shard's frontier bound is at most the k-th score; every answer it
   had left scores at most that bound, and the k-th score only rises
   as more answers merge, so nothing in the final top-k is lost.
4. When every shard has either proven its local search complete or
   been cancelled under rule 3, no undiscovered answer can beat the
   k-th score: the merged list is the global top-k.

Two execution modes share the coordinator logic:

* **inline** (default on a single-CPU host): shard searches run as
  interleaved generators in the calling thread, round-robin with a
  small heartbeat so cancellations land promptly.  Deterministic, and
  still profitable serially: per-shard bound evaluation iterates only
  the shard's slice of the match sets, where the global engine pays
  for every match node on every bound (see ``docs/PERFORMANCE.md``
  §11).
* **process**: a persistent pool of ``fork`` workers holds the shard
  payloads copy-on-write (mirroring ``indexing/build.py``); the
  coordinator broadcasts the global k-th score through a shared array
  the workers poll between heartbeat snapshots, and a cancelled slot
  is driven to ``+inf``.  The pool is owned by the system and joined
  within the serving daemon's drain budget on shutdown.
"""

from __future__ import annotations

import dataclasses
import time
from collections import deque
from typing import Dict, List, Optional, Tuple

from ..config import SearchParams
from ..exceptions import ReproError, SearchError
from ..model.answer import RankedAnswer, RankedList
from ..model.jtt import JoinedTupleTree
from ..rwmp.scoring import RWMPScorer
from ..text.matcher import MatchSets
from .branch_and_bound import (
    AnytimeSnapshot,
    BranchAndBoundSearch,
    SearchStats,
)

__all__ = ["ShardedSearch", "ShardWorkerPool", "ShardedExecutor"]

#: Internal per-shard generator heartbeat when the caller asked for
#: improvement-only snapshots — the round-robin still needs ticks to
#: interleave shards and deliver cancellations promptly.
INLINE_TICK = 64

#: Queue pops between shared-threshold polls inside a pool worker.
WORKER_TICK = 64

#: Coordinator poll timeout while waiting on pool results (seconds).
POOL_POLL_SECONDS = 0.02

#: SearchStats counters summed across shards.
_SUM_FIELDS = (
    "expanded", "generated", "enqueued", "pruned_bound",
    "pruned_diameter", "pruned_distance", "answers_found", "bound_evals",
    "cheap_admissions", "tightened", "repushed", "admit_capped",
    "bound_seconds", "cheap_bound_seconds", "tighten_seconds",
    "expand_seconds", "score_seconds", "arena_candidates",
    "arena_rollbacks",
)


def _shard_params(params: SearchParams) -> SearchParams:
    """The per-shard search parameters (single-process engine)."""
    return dataclasses.replace(params, engine="arena")


def _accumulate(total: SearchStats, shard_stats: Dict[str, object]) -> None:
    """Fold one shard's stats dict into the coordinator's totals."""
    for field in _SUM_FIELDS:
        setattr(total, field, getattr(total, field) + shard_stats[field])
    total.arena_peak_bytes = max(
        total.arena_peak_bytes, int(shard_stats["arena_peak_bytes"])
    )
    total.stopped_early = bool(
        total.stopped_early or shard_stats["stopped_early"]
    )


def _answers_payload(shard, answers: List[RankedAnswer]) -> List[tuple]:
    """Globalized answers as plain picklable tuples."""
    payload = []
    for answer in answers:
        ranked = shard.globalize(answer)
        payload.append((
            tuple(sorted(ranked.tree.nodes)),
            tuple(sorted(ranked.tree.edges)),
            ranked.score,
        ))
    return payload


def _answers_from_payload(payload: List[tuple]) -> List[RankedAnswer]:
    return [
        RankedAnswer(tree=JoinedTupleTree(nodes, edges), score=score)
        for nodes, edges, score in payload
    ]


def _run_shard(
    shard,
    local_match: MatchSets,
    params: SearchParams,
    heartbeat: int,
    threshold,
) -> Tuple[List[tuple], Dict[str, object], float, bool]:
    """One shard search to completion or cancellation (worker side).

    ``threshold`` is a zero-argument callable returning the latest
    cancellation threshold (the global k-th score; ``-inf`` while the
    global list is not full, ``+inf`` to force a cancel).

    Returns ``(answers_payload, stats_dict, wall_seconds, terminated)``.
    """
    start = time.perf_counter()
    scorer = RWMPScorer(shard.graph, shard.index, local_match, shard.dampening)
    search = BranchAndBoundSearch(
        shard.graph, scorer, local_match, _shard_params(params),
        index=shard.graph_index,
    )
    terminated = False
    last = None
    generator = search.snapshots(heartbeat=heartbeat)
    try:
        for snapshot in generator:
            last = snapshot
            if snapshot.proven_optimal:
                break
            if snapshot.frontier_bound <= threshold():
                terminated = True
                break
    finally:
        generator.close()
    answers = _answers_payload(shard, last.answers if last else [])
    wall = time.perf_counter() - start
    return answers, dataclasses.asdict(search.stats), wall, terminated


# --------------------------------------------------------------------- pool


def _pool_worker(partition, tasks, results, thresholds) -> None:
    """Persistent worker loop: shard payloads arrive via fork (COW).

    Tasks are ``(query_id, sid, match_payload, params, heartbeat)``;
    ``None`` is the shutdown sentinel.  Results are
    ``(query_id, sid, answers_payload, stats_dict, wall, terminated)``.
    """
    while True:
        task = tasks.get()
        if task is None:
            return
        query_id, sid, match_payload, params, heartbeat = task
        shard = partition.shards[sid]
        keywords, per_keyword = match_payload
        local_match = MatchSets(
            keywords=list(keywords),
            per_keyword={kw: set(nodes) for kw, nodes in per_keyword},
        )
        try:
            answers, stats, wall, terminated = _run_shard(
                shard, local_match, params, heartbeat,
                threshold=lambda: thresholds[sid],
            )
            results.put((query_id, sid, answers, stats, wall, terminated))
        except BaseException as exc:  # surface, don't hang the merge
            results.put((query_id, sid, exc, None, 0.0, False))


class ShardWorkerPool:
    """A persistent pool of fork workers over one partition.

    One sharded query runs through the pool at a time (the per-query
    cancellation slots are shared state); concurrent callers serialize
    on :meth:`acquire`.  The serving daemon closes the pool inside its
    drain budget via :meth:`close`.
    """

    def __init__(self, partition, workers: Optional[int] = None) -> None:
        import multiprocessing
        import os
        import threading
        if "fork" not in multiprocessing.get_all_start_methods():
            raise ReproError("sharded process pool requires fork start method")
        ctx = multiprocessing.get_context("fork")
        self.partition = partition
        n = partition.n_shards
        if workers is None:
            workers = max(1, min(n, os.cpu_count() or 1))
        self.workers = workers
        self._thresholds = ctx.Array("d", max(1, n))
        for i in range(len(self._thresholds)):
            self._thresholds[i] = float("-inf")
        self._tasks = ctx.Queue()
        self._results = ctx.Queue()
        self._lock = threading.Lock()
        self._query_seq = 0
        self._closed = False
        self._procs = [
            ctx.Process(
                target=_pool_worker,
                args=(partition, self._tasks, self._results,
                      self._thresholds),
                daemon=True,
            )
            for _ in range(workers)
        ]
        for proc in self._procs:
            proc.start()

    # ------------------------------------------------------------- queries

    def acquire(self) -> int:
        """Reserve the pool for one query; returns the query id."""
        self._lock.acquire()
        if self._closed:
            self._lock.release()
            raise ReproError("shard worker pool is closed")
        self._query_seq += 1
        for i in range(len(self._thresholds)):
            self._thresholds[i] = float("-inf")
        return self._query_seq

    def release(self) -> None:
        self._lock.release()

    def submit(self, query_id, sid, match_payload, params, heartbeat):
        self._tasks.put((query_id, sid, match_payload, params, heartbeat))

    def poll(self, timeout: float):
        """Next result tuple, or None on timeout."""
        import queue as queue_mod
        try:
            return self._results.get(timeout=timeout)
        except queue_mod.Empty:
            return None

    def broadcast_threshold(self, value: float) -> None:
        """Publish the global k-th score to every live shard slot."""
        for i in range(len(self._thresholds)):
            if self._thresholds[i] != float("inf"):
                self._thresholds[i] = value

    def cancel_shard(self, sid: int) -> None:
        self._thresholds[sid] = float("inf")

    def cancel_all(self) -> None:
        for i in range(len(self._thresholds)):
            self._thresholds[i] = float("inf")

    # ------------------------------------------------------------ lifecycle

    @property
    def alive(self) -> bool:
        return any(proc.is_alive() for proc in self._procs)

    def close(self, timeout: Optional[float] = None) -> bool:
        """Stop the workers, joining within ``timeout`` seconds.

        In-flight shard searches are cancelled through the shared
        threshold array, the shutdown sentinel is queued per worker,
        and any process still alive past the deadline is terminated.
        Returns True when every worker exited by itself.
        """
        with self._lock:
            if self._closed:
                return True
            self._closed = True
            self.cancel_all()
            for _ in self._procs:
                self._tasks.put(None)
            deadline = (
                None if timeout is None else time.perf_counter() + timeout
            )
            graceful = True
            for proc in self._procs:
                remaining = (
                    None if deadline is None
                    else max(0.0, deadline - time.perf_counter())
                )
                proc.join(remaining)
                if proc.is_alive():
                    graceful = False
                    proc.terminate()
                    proc.join(1.0)
            self._tasks.close()
            self._results.close()
            return graceful


# --------------------------------------------------------------- coordinator


class ShardedSearch:
    """Coordinator for one sharded query.

    Mirrors the :class:`BranchAndBoundSearch` surface the system layer
    drives — :meth:`run`, :meth:`snapshots`, ``stats``,
    ``last_proven`` — so the answer cache, anytime serving, and span
    accounting work unchanged.

    Args:
        partition: the shard views (:class:`repro.graph.partition.GraphPartition`).
        match: the query's *global* match sets.
        params: resolved search parameters (``engine="sharded"``).
        pool: optional :class:`ShardWorkerPool`; None runs the shards
            inline (interleaved generators, deterministic).
        span: optional parent trace span — one ``shard`` child span is
            opened per searched shard.
    """

    #: Test-only mutation hook: per-shard frontier bounds are scaled by
    #: this factor before the cancellation test.  Anything below 1.0 is
    #: unsound (deflated bounds cancel shards that still hold top-k
    #: answers) — the differential harness proves such a deflation is
    #: caught.
    _bound_scale = 1.0

    def __init__(
        self,
        partition,
        match: MatchSets,
        params: SearchParams,
        pool: Optional[ShardWorkerPool] = None,
        span=None,
    ) -> None:
        if params.engine != "sharded":
            raise SearchError(
                f"ShardedSearch needs engine='sharded', got {params.engine!r}"
            )
        self.partition = partition
        self.match = match
        self.params = params
        self.pool = pool
        self.span = span
        self.stats = SearchStats(engine="sharded")
        self.last_proven = False
        self.last_arena = None

    # --------------------------------------------------------------- public

    def run(self) -> List[RankedAnswer]:
        snapshot = None
        for snapshot in self.snapshots():
            pass
        return snapshot.answers if snapshot is not None else []

    def snapshots(self, heartbeat: int = 0):
        """Anytime merged snapshots (contract of
        :meth:`BranchAndBoundSearch.snapshots`)."""
        self.last_proven = False
        active = []
        walls: Dict[int, float] = {}
        for shard in self.partition.shards:
            local = shard.localize_match(self.match, self.params.semantics)
            if local is not None:
                active.append((shard, local))
        self.stats.shard_fanout = len(active)
        if not active:
            self.stats.shard_wall_seconds = ()
            self.last_proven = True
            self.stats.snapshots_yielded += 1
            yield AnytimeSnapshot(
                answers=[], frontier_bound=float("-inf"), proven_optimal=True
            )
            return
        if self.pool is not None:
            source = self._pool_snapshots(active, walls, heartbeat)
        else:
            source = self._inline_snapshots(active, walls, heartbeat)
        try:
            yield from source
        finally:
            self.stats.shard_wall_seconds = tuple(
                walls.get(shard.sid, 0.0) for shard, _ in active
            )

    # --------------------------------------------------------------- inline

    def _shard_span(self, shard):
        if self.span is None:
            return None
        child = self.span.child("shard")
        child.set_attribute("shard", shard.sid)
        child.set_attribute("shard_nodes", shard.node_count)
        return child

    def _finish_shard_span(self, span, wall: float, terminated: bool) -> None:
        if span is None:
            return
        span.set_attribute("wall_seconds", wall)
        span.set_attribute("terminated_early", terminated)
        span.finish()

    def _inline_snapshots(self, active, walls, heartbeat: int):
        params = self.params
        tick = heartbeat if heartbeat > 0 else INLINE_TICK
        top_k = RankedList(params.k)
        states = deque()
        for shard, local in active:
            scorer = RWMPScorer(
                shard.graph, shard.index, local, shard.dampening
            )
            search = BranchAndBoundSearch(
                shard.graph, scorer, local, _shard_params(params),
                index=shard.graph_index,
            )
            states.append({
                "shard": shard,
                "search": search,
                "gen": search.snapshots(heartbeat=tick),
                "span": self._shard_span(shard),
                "bound": float("inf"),
            })
            walls[shard.sid] = 0.0
        live = {state["shard"].sid: state for state in states}
        last_yield_revision = -1
        ticks = 0

        def merged(proven: bool) -> AnytimeSnapshot:
            frontier = (
                max(state["bound"] for state in live.values())
                if live else float("-inf")
            )
            self.stats.snapshots_yielded += 1
            return AnytimeSnapshot(
                answers=top_k.as_list(),
                frontier_bound=frontier,
                proven_optimal=proven,
            )

        def retire(state, terminated: bool) -> None:
            shard = state["shard"]
            state["gen"].close()
            _accumulate(
                self.stats, dataclasses.asdict(state["search"].stats)
            )
            if terminated:
                self.stats.shards_terminated_early += 1
            live.pop(shard.sid, None)
            self._finish_shard_span(
                state["span"], walls[shard.sid], terminated
            )

        try:
            while states:
                state = states.popleft()
                shard = state["shard"]
                start = time.perf_counter()
                try:
                    snapshot = next(state["gen"])
                except StopIteration:
                    walls[shard.sid] += time.perf_counter() - start
                    retire(state, terminated=False)
                    continue
                walls[shard.sid] += time.perf_counter() - start
                ticks += 1
                for answer in snapshot.answers:
                    top_k.offer(shard.globalize(answer))
                if snapshot.proven_optimal:
                    retire(state, terminated=False)
                else:
                    bound = snapshot.frontier_bound * self._bound_scale
                    state["bound"] = bound
                    if top_k.full and bound <= top_k.min_score():
                        # Global early termination: everything this
                        # shard has left is bounded below the k-th
                        # admitted score.
                        retire(state, terminated=True)
                    else:
                        states.append(state)
                if top_k.revision != last_yield_revision or (
                    heartbeat and states
                ):
                    last_yield_revision = top_k.revision
                    yield merged(proven=False)
            self.last_proven = True
            yield merged(proven=True)
        finally:
            for state in states:
                retire(state, terminated=False)

    # ----------------------------------------------------------------- pool

    def _pool_snapshots(self, active, walls, heartbeat: int):
        params = self.params
        pool = self.pool
        top_k = RankedList(params.k)
        query_id = pool.acquire()
        spans = {}
        outstanding = set()
        try:
            for shard, local in active:
                payload = (
                    tuple(local.keywords),
                    tuple(
                        (kw, tuple(sorted(nodes)))
                        for kw, nodes in sorted(local.per_keyword.items())
                    ),
                )
                pool.submit(
                    query_id, shard.sid, payload, params, WORKER_TICK
                )
                outstanding.add(shard.sid)
                walls[shard.sid] = 0.0
                spans[shard.sid] = self._shard_span(shard)
            last_yield_revision = -1
            while outstanding:
                result = pool.poll(POOL_POLL_SECONDS)
                if result is None:
                    if heartbeat:
                        self.stats.snapshots_yielded += 1
                        yield AnytimeSnapshot(
                            answers=top_k.as_list(),
                            frontier_bound=float("inf"),
                            proven_optimal=False,
                        )
                    continue
                rid, sid, answers, stats, wall, terminated = result
                if rid != query_id:
                    continue  # stale result from an abandoned query
                outstanding.discard(sid)
                if isinstance(answers, BaseException):
                    raise answers
                walls[sid] = wall
                for answer in _answers_from_payload(answers):
                    top_k.offer(answer)
                _accumulate(self.stats, stats)
                if terminated:
                    self.stats.shards_terminated_early += 1
                self._finish_shard_span(spans.pop(sid, None), wall, terminated)
                if top_k.full:
                    pool.broadcast_threshold(
                        top_k.min_score() / self._bound_scale
                        if self._bound_scale
                        else top_k.min_score()
                    )
                if top_k.revision != last_yield_revision and outstanding:
                    last_yield_revision = top_k.revision
                    self.stats.snapshots_yielded += 1
                    yield AnytimeSnapshot(
                        answers=top_k.as_list(),
                        frontier_bound=float("inf"),
                        proven_optimal=False,
                    )
            self.last_proven = True
            self.stats.snapshots_yielded += 1
            yield AnytimeSnapshot(
                answers=top_k.as_list(),
                frontier_bound=float("-inf"),
                proven_optimal=True,
            )
        finally:
            if outstanding:
                # Abandoned mid-query (deadline): hasten the workers and
                # drain our stale results so the next query starts clean.
                pool.cancel_all()
                deadline = time.perf_counter() + 30.0
                while outstanding and time.perf_counter() < deadline:
                    result = pool.poll(POOL_POLL_SECONDS)
                    if result is None:
                        continue
                    if result[0] == query_id:
                        outstanding.discard(result[1])
            for span in spans.values():
                self._finish_shard_span(span, 0.0, False)
            pool.release()


# ------------------------------------------------------------------ executor


class ShardedExecutor:
    """System-owned factory of sharded searches.

    Memoizes the graph partition per (version, epoch, shards, halo) and
    owns the optional persistent worker pool.  ``mode``:

    * ``"auto"``: processes when the host has more than one CPU and the
      partition has more than one shard, else inline.
    * ``"inline"`` / ``"process"``: forced.
    """

    def __init__(self, system, mode: str = "auto") -> None:
        if mode not in ("auto", "inline", "process"):
            raise ReproError(f"unknown sharded mode {mode!r}")
        from ..graph.partition import PartitionCache
        self.system = system
        self.mode = mode
        self._partitions = PartitionCache()
        self._pool: Optional[ShardWorkerPool] = None
        self._pool_key = None
        import threading
        self._pool_lock = threading.Lock()

    def partition_for(self, params: SearchParams):
        system = self.system
        return self._partitions.get(
            system.graph, system.importance, system.dampening,
            params.shards, params.diameter,
            epoch=getattr(system, "_ranking_epoch", 0),
            inverted_index=system.index,
            graph_index=system.graph_index,
        )

    def _resolve_mode(self, partition) -> str:
        if self.mode != "auto":
            return self.mode
        import multiprocessing
        import os
        if (
            partition.n_shards > 1
            and (os.cpu_count() or 1) > 1
            and "fork" in multiprocessing.get_all_start_methods()
        ):
            return "process"
        return "inline"

    def _pool_for(self, partition) -> ShardWorkerPool:
        with self._pool_lock:
            key = (partition.graph_version, id(partition))
            if self._pool is not None and self._pool_key == key:
                return self._pool
            if self._pool is not None:
                self._pool.close(timeout=5.0)
            self._pool = ShardWorkerPool(partition)
            self._pool_key = key
            return self._pool

    def search_for(
        self, match: MatchSets, params: SearchParams, span=None
    ) -> ShardedSearch:
        partition = self.partition_for(params)
        pool = None
        if self._resolve_mode(partition) == "process":
            pool = self._pool_for(partition)
        return ShardedSearch(partition, match, params, pool=pool, span=span)

    def close(self, timeout: Optional[float] = None) -> bool:
        """Join the worker pool (if any) within ``timeout`` seconds."""
        with self._pool_lock:
            pool, self._pool, self._pool_key = self._pool, None, None
        if pool is None:
            return True
        return pool.close(timeout=timeout)
