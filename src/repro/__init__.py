"""CI-Rank: ranking keyword search results by collective importance.

A from-scratch reproduction of Yu & Shi, "CI-Rank: Ranking Keyword Search
Results Based on Collective Importance" (ICDE 2012): the RWMP scoring
model, the branch-and-bound top-k search with admissible bounds, the
naive baseline search, star/pairs indexing, the SPARK / BANKS / DISCOVER2
baselines, synthetic IMDB/DBLP datasets with the paper's query mixes, and
the full evaluation harness.

Quickstart::

    from repro import CIRankSystem, generate_imdb

    db = generate_imdb()
    system = CIRankSystem.from_database(
        db, merge_tables=("actor", "actress", "director", "producer"))
    for answer in system.search("halloran dunefort", k=5):
        print(system.describe(answer))
"""

from .config import (
    EdgeWeights,
    RWMPParams,
    SearchParams,
    DEFAULT_ALPHA,
    DEFAULT_GROUP_SIZE,
    DEFAULT_TELEPORT,
)
from .exceptions import (
    DatasetError,
    EvaluationError,
    GraphError,
    IndexingError,
    IntegrityError,
    InvalidTreeError,
    NotReducedError,
    ReproError,
    SchemaError,
    SearchError,
)
from .db import Column, Database, ForeignKey, Schema, Table, load_records
from .db.schema import ManyToMany, dblp_schema, imdb_schema
from .graph import DataGraph, GraphBuilder, build_graph, sample_subgraph
from .text import Analyzer, InvertedIndex, KeywordMatcher, MatchSets
from .importance import (
    FeedbackModel,
    ImportanceVector,
    monte_carlo_pagerank,
    pagerank,
)
from .model import JoinedTupleTree, Query, RankedAnswer, RankedList
from .rwmp import (
    DampeningModel,
    RWMPScorer,
    explain_tree,
    pass_messages,
    render_explanation,
)
from .search import (
    AnytimeSnapshot,
    BranchAndBoundSearch,
    CandidateTree,
    NaiveSearch,
    UpperBoundEstimator,
    enumerate_answers,
)
from .indexing import PairsIndex, StarIndex, find_star_relations
from .baselines import (
    BackwardExpandingSearch,
    ObjectRankScorer,
    BanksScorer,
    Discover2Scorer,
    SparkScorer,
)
from .datasets import (
    DblpConfig,
    EvalQuery,
    ImdbConfig,
    WorkloadConfig,
    generate_dblp,
    generate_imdb,
    generate_workload,
    simulate_query_log,
)
from .eval import (
    EffectivenessHarness,
    EfficiencyHarness,
    RelevanceOracle,
    build_pool,
    graded_precision,
    mean_reciprocal_rank,
    reciprocal_rank,
)
from .system import CIRankSystem
from .db.csv_loader import dump_csv_directory, load_csv_directory
from .importance.weight_learning import EdgeWeightLearner, PreferencePair
from .importance.incremental import ImportanceMaintainer, refresh_importance
from .eval.stats import bootstrap_ci, paired_permutation_test
from .storage import load_system, save_system
from .xmlgraph import XmlGraphConfig, XmlSearchSystem, xml_to_graph
from .export import (
    answer_to_dot,
    answer_to_json,
    graph_to_graphml,
    ranking_to_json,
)

__version__ = "1.0.0"

__all__ = [
    # configuration
    "EdgeWeights", "RWMPParams", "SearchParams",
    "DEFAULT_ALPHA", "DEFAULT_GROUP_SIZE", "DEFAULT_TELEPORT",
    # errors
    "ReproError", "SchemaError", "IntegrityError", "GraphError",
    "InvalidTreeError", "NotReducedError", "SearchError", "IndexingError",
    "DatasetError", "EvaluationError",
    # relational substrate
    "Column", "ForeignKey", "ManyToMany", "Table", "Schema", "Database",
    "load_records", "imdb_schema", "dblp_schema",
    # graph
    "DataGraph", "GraphBuilder", "build_graph", "sample_subgraph",
    # text
    "Analyzer", "InvertedIndex", "KeywordMatcher", "MatchSets",
    # importance
    "ImportanceVector", "pagerank", "monte_carlo_pagerank", "FeedbackModel",
    # model
    "Query", "JoinedTupleTree", "RankedAnswer", "RankedList",
    # rwmp
    "DampeningModel", "RWMPScorer", "pass_messages",
    "explain_tree", "render_explanation",
    # search
    "CandidateTree", "NaiveSearch", "BranchAndBoundSearch",
    "AnytimeSnapshot",
    "UpperBoundEstimator", "enumerate_answers",
    # indexing
    "PairsIndex", "StarIndex", "find_star_relations",
    # baselines
    "Discover2Scorer", "SparkScorer", "BanksScorer",
    "BackwardExpandingSearch", "ObjectRankScorer",
    # datasets
    "ImdbConfig", "generate_imdb", "DblpConfig", "generate_dblp",
    "WorkloadConfig", "EvalQuery", "generate_workload",
    "simulate_query_log",
    # evaluation
    "EffectivenessHarness", "EfficiencyHarness", "RelevanceOracle",
    "build_pool", "reciprocal_rank", "mean_reciprocal_rank",
    "graded_precision",
    # facade
    "CIRankSystem",
    # extensions
    "load_csv_directory", "dump_csv_directory",
    "EdgeWeightLearner", "PreferencePair",
    "ImportanceMaintainer", "refresh_importance",
    "bootstrap_ci", "paired_permutation_test",
    "save_system", "load_system",
    "XmlGraphConfig", "XmlSearchSystem", "xml_to_graph",
    "answer_to_dot", "answer_to_json", "graph_to_graphml",
    "ranking_to_json",
]
