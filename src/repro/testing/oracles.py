"""Brute-force reference oracles and the differential entry point.

Everything the optimized stack computes has an independent, deliberately
naive re-implementation here:

* :func:`oracle_generation` / :func:`oracle_delivery` /
  :func:`oracle_tree_score` — Equations 3-4 evaluated as explicit
  path products along ``tree.path(u, v)`` (a third implementation,
  independent of both the per-source BFS in
  :func:`repro.rwmp.messages.pass_messages` and the batched
  :class:`~repro.rwmp.messages.TreeMessageKernel`);
* :func:`oracle_pagerank` — Equation 1 as a pure-Python dict iteration
  (no numpy);
* :func:`exhaustive_answers` — every Definition-3 answer up to the
  diameter cap, under AND or OR semantics;
* :func:`differential_check` — builds the full
  :class:`~repro.system.CIRankSystem` stack over a database and asserts
  that branch-and-bound (plain, pairs-indexed, star-indexed), the
  sharded coordinator (at several shard counts), the naive search, and
  the exhaustive oracle agree on the top-k, with ties handled by
  score-equivalence classes.

Agreement contracts (see docs/TESTING.md for the narrative):

* **branch-and-bound with permissive merges** is provably complete
  (Theorem 1), so its top-k must *equal* the oracle's up to ties;
  attaching a pairs or star index must not change the result.
* **naive search** explores shortest-path assemblies only — a strict
  subset of the answer space (e.g. multi-leaf redundant-coverage stars
  are unreachable) — so it is held to the *subset contract*: every
  answer it returns is a true answer with the true score, ranked
  correctly, and pointwise no better than the oracle's top-k.
* **strict-merge branch-and-bound** (the production default) cannot
  build redundant-coverage trees either and is held to the same subset
  contract.

Any violation raises :class:`DifferentialFailure` whose message embeds
the case label (the generating seed), making every failure replayable
via ``repro.testing.generators.random_case(seed)`` or the serialized
corpus (:mod:`repro.testing.corpus`).
"""

from __future__ import annotations

import dataclasses
import math
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Set

from ..config import EdgeWeights, SearchParams
from ..db.database import Database
from ..exceptions import EvaluationError, InvalidTreeError
from ..graph.datagraph import DataGraph
from ..indexing.pairs import PairsIndex
from ..indexing.star import StarIndex
from ..model.answer import RankedAnswer, RankedList
from ..model.jtt import JoinedTupleTree
from ..rwmp.dampening import DampeningModel
from ..search.branch_and_bound import BranchAndBoundSearch
from ..search.enumerate import enumerate_answers
from ..system import CIRankSystem
from ..text.inverted_index import InvertedIndex
from ..text.matcher import MatchSets
from .generators import GeneratedCase

#: Relative score tolerance for cross-implementation agreement.  The
#: kernel, the BFS reference, and the path-product oracle multiply the
#: same factors in different orders, so they agree to rounding only.
SCORE_RTOL = 1e-9


class DifferentialFailure(AssertionError):
    """One engine disagreed with the brute-force oracle.

    Attributes:
        engine: which comparison leg failed.
        label: the case label (usually ``seed=N query=...``).
    """

    def __init__(self, engine: str, label: str, detail: str) -> None:
        self.engine = engine
        self.label = label
        super().__init__(f"[{engine}] {detail} ({label})")


@dataclass
class DifferentialReport:
    """Outcome of one :func:`differential_check` run.

    Attributes:
        label: the case label.
        trivial: True when the query was unmatchable (all engines must
            return nothing; no enumeration happened).
        answers_enumerated: size of the exhaustive answer space.
        topk: the oracle's top-k (best first).
        engines: comparison legs that ran and agreed.
    """

    label: str = ""
    trivial: bool = False
    answers_enumerated: int = 0
    topk: List[RankedAnswer] = field(default_factory=list)
    engines: List[str] = field(default_factory=list)


# ----------------------------------------------------------- RWMP oracle


def oracle_generation(
    index: InvertedIndex,
    dampening: DampeningModel,
    match: MatchSets,
    node: int,
) -> float:
    """``r_ii = t * p_i * |v_i ∩ Q| / |v_i|`` recomputed from the index."""
    keywords = match.keywords_of.get(node, frozenset())
    matched = sum(index.tf(keyword, node) for keyword in keywords)
    total = index.doc_length(node)
    if total <= 0 or matched <= 0:
        return 0.0
    return dampening.surfers(node) * matched / total


def oracle_delivery(
    graph: DataGraph,
    tree: JoinedTupleTree,
    source: int,
    initial: float,
    rate,
) -> Dict[int, float]:
    """Deliveries of ``source``'s messages as explicit path products.

    For every other tree node the unique tree path is walked and the
    per-hop factor ``w(a, b) / den(a) * d_b`` accumulated, where
    ``den(a)`` sums the raw directed weights toward ``a``'s tree
    neighbors.  No shared state with the BFS or kernel implementations.
    """
    if source not in tree.nodes:
        raise InvalidTreeError(f"source {source} not in tree")
    den = {
        node: sum(graph.weight(node, nbr) for nbr in tree.neighbors(node))
        for node in tree.nodes
    }
    out: Dict[int, float] = {}
    for target in tree.nodes:
        if target == source:
            continue
        value = max(initial, 0.0)
        path = tree.path(source, target)
        for a, b in zip(path, path[1:]):
            if den[a] <= 0.0:
                value = 0.0
                break
            value *= graph.weight(a, b) / den[a] * rate(b)
        out[target] = value
    return out


def oracle_node_scores(
    graph: DataGraph,
    tree: JoinedTupleTree,
    match: MatchSets,
    index: InvertedIndex,
    dampening: DampeningModel,
) -> Dict[int, float]:
    """Equation (3) per non-free node, from the path-product deliveries."""
    sources = tree.non_free_nodes(match)
    if not sources:
        raise InvalidTreeError("tree contains no non-free node")
    gen = {
        s: oracle_generation(index, dampening, match, s) for s in sources
    }
    if len(sources) == 1:
        only = sources[0]
        return {only: gen[only]}
    delivered = {
        s: oracle_delivery(graph, tree, s, gen[s], dampening.rate)
        for s in sources
    }
    return {
        v: min(delivered[u][v] for u in sources if u != v) for v in sources
    }


def oracle_tree_score(
    graph: DataGraph,
    tree: JoinedTupleTree,
    match: MatchSets,
    index: InvertedIndex,
    dampening: DampeningModel,
) -> float:
    """Equation (4): the average of the oracle node scores."""
    scores = oracle_node_scores(graph, tree, match, index, dampening)
    return sum(scores.values()) / len(scores)


# ------------------------------------------------------- pagerank oracle


def oracle_pagerank(
    graph: DataGraph,
    teleport: float = 0.15,
    tolerance: float = 1e-10,
    max_iterations: int = 200,
) -> List[float]:
    """Equation (1) as a pure-Python power iteration (no numpy).

    Uniform teleport vector, dangling mass redistributed uniformly —
    the configuration :func:`repro.importance.pagerank.pagerank` runs
    by default.  Returns the stationary distribution as a list.
    """
    n = graph.node_count
    if n == 0:
        return []
    out_norm = [graph.normalized_out(node) for node in graph.nodes()]
    u = 1.0 / n
    p = [u] * n
    for _ in range(max_iterations):
        new = [0.0] * n
        dangling = 0.0
        for node, dist in enumerate(out_norm):
            if not dist:
                dangling += p[node]
                continue
            mass = p[node]
            for target, share in dist.items():
                new[target] += mass * share
        new = [
            (1.0 - teleport) * (value + dangling * u) + teleport * u
            for value in new
        ]
        residual = sum(abs(a - b) for a, b in zip(new, p))
        p = new
        if residual < tolerance:
            break
    total = sum(p)
    return [value / total for value in p]


# -------------------------------------------------- exhaustive answers


def exhaustive_answers(
    graph: DataGraph,
    match: MatchSets,
    max_diameter: int,
    max_nodes: Optional[int] = None,
    semantics: str = "and",
) -> Iterator[JoinedTupleTree]:
    """Every valid answer up to the caps, under either semantics.

    AND delegates to :func:`repro.search.enumerate.enumerate_answers`;
    OR runs the same subtree growth but accepts any reduced tree (every
    enumerated tree contains at least one keyword node by construction).
    Growing never shrinks the diameter, so diameter pruning during
    growth is safe: every subtree of a valid answer respects the cap.
    """
    if max_nodes is None:
        max_nodes = graph.node_count
    if semantics == "and":
        yield from enumerate_answers(graph, match, max_diameter, max_nodes)
        return
    seen: Set[JoinedTupleTree] = set()
    frontier: List[JoinedTupleTree] = []
    for node in sorted(match.all_nodes):
        tree = JoinedTupleTree.single(node)
        seen.add(tree)
        frontier.append(tree)
    emitted: List[JoinedTupleTree] = []
    while frontier:
        tree = frontier.pop()
        if tree.diameter <= max_diameter and tree.is_reduced(match):
            emitted.append(tree)
        if len(tree.nodes) >= max_nodes:
            continue
        for node in tree.nodes:
            for neighbor in graph.neighbors(node):
                if neighbor in tree.nodes:
                    continue
                extended = tree.with_edge(node, neighbor)
                if extended.diameter > max_diameter:
                    continue
                if extended not in seen:
                    seen.add(extended)
                    frontier.append(extended)
    emitted.sort(
        key=lambda t: (len(t.nodes), sorted(t.nodes), sorted(t.edges))
    )
    yield from emitted


def exhaustive_topk(
    scores: Dict[JoinedTupleTree, float], k: int
) -> List[RankedAnswer]:
    """The oracle top-k over a scored answer space (deterministic ties)."""
    top = RankedList(k)
    for tree, score in scores.items():
        top.offer(RankedAnswer(tree, score))
    return top.as_list()


# -------------------------------------------------------- comparisons


def _close(a: float, b: float, rtol: float = SCORE_RTOL) -> bool:
    return math.isclose(a, b, rel_tol=rtol, abs_tol=1e-12)


def _check_exact_topk(
    engine: str,
    label: str,
    got: List[RankedAnswer],
    oracle_topk: List[RankedAnswer],
    scores: Dict[JoinedTupleTree, float],
) -> None:
    """Top-k equality up to score-equivalence classes.

    The returned list must (1) contain no duplicate trees, (2) have
    exactly the oracle's score profile, and (3) consist of genuine
    answers reported at their true scores.  Together these pin the
    top-k: any answer above the k-th tie class is forced, and inside
    the boundary class any representative is acceptable.
    """
    trees = [answer.tree for answer in got]
    if len(set(trees)) != len(trees):
        raise DifferentialFailure(engine, label, "duplicate answers returned")
    if len(got) != len(oracle_topk):
        raise DifferentialFailure(
            engine, label,
            f"returned {len(got)} answers, oracle found {len(oracle_topk)}",
        )
    for rank, (answer, expected) in enumerate(zip(got, oracle_topk)):
        if not _close(answer.score, expected.score):
            raise DifferentialFailure(
                engine, label,
                f"rank {rank}: score {answer.score!r} != oracle "
                f"{expected.score!r}",
            )
    for answer in got:
        truth = scores.get(answer.tree)
        if truth is None:
            raise DifferentialFailure(
                engine, label,
                f"returned tree {sorted(answer.tree.nodes)} is not a valid "
                "answer (not in the exhaustive space)",
            )
        if not _close(answer.score, truth):
            raise DifferentialFailure(
                engine, label,
                f"tree {sorted(answer.tree.nodes)} scored {answer.score!r}, "
                f"oracle says {truth!r}",
            )


def _check_subset_topk(
    engine: str,
    label: str,
    got: List[RankedAnswer],
    oracle_topk: List[RankedAnswer],
    scores: Dict[JoinedTupleTree, float],
) -> None:
    """The subset contract for incomplete engines (naive, strict merge)."""
    trees = [answer.tree for answer in got]
    if len(set(trees)) != len(trees):
        raise DifferentialFailure(engine, label, "duplicate answers returned")
    for previous, answer in zip(got, got[1:]):
        if answer.score > previous.score + 1e-12:
            raise DifferentialFailure(
                engine, label, "answers are not sorted best-first"
            )
    for answer in got:
        truth = scores.get(answer.tree)
        if truth is None:
            raise DifferentialFailure(
                engine, label,
                f"returned tree {sorted(answer.tree.nodes)} is not a valid "
                "answer (not in the exhaustive space)",
            )
        if not _close(answer.score, truth):
            raise DifferentialFailure(
                engine, label,
                f"tree {sorted(answer.tree.nodes)} scored {answer.score!r}, "
                f"oracle says {truth!r}",
            )
    for rank, (answer, expected) in enumerate(zip(got, oracle_topk)):
        if answer.score > expected.score and not _close(
            answer.score, expected.score
        ):
            raise DifferentialFailure(
                engine, label,
                f"rank {rank}: score {answer.score!r} beats the oracle's "
                f"{expected.score!r} — impossible for a sound engine",
            )


# ----------------------------------------------------- the entry point


def differential_check(
    db: Database,
    query: str,
    params: Optional[SearchParams] = None,
    weights: Optional[EdgeWeights] = None,
    *,
    max_nodes: Optional[int] = None,
    check_indexes: bool = True,
    check_naive: bool = True,
    check_strict: bool = True,
    check_sharded: bool = True,
    sharded_shards: tuple = (1, 2, 3),
    label: str = "",
) -> DifferentialReport:
    """Assert the whole optimized stack agrees with brute force.

    Builds a :class:`CIRankSystem` over ``db``, enumerates the complete
    answer space, scores it with the independent path-product oracle
    (cross-checking the vectorized scorer on every tree), and compares
    every search engine against the oracle top-k.

    Args:
        db: the database under test.
        query: keyword query text.
        params: search parameters (defaults to ``k=3, D=3``); the
            ``strict_merge`` flag is overridden per comparison leg.
        weights: edge-weight table for the graph build.
        max_nodes: enumeration node cap; defaults to the whole graph
            (required for the exactness of the oracle — only lower it
            for graphs too big to enumerate, where the check degrades
            to the subset contract).
        check_indexes: also run branch-and-bound with a pairs and a
            star index attached (results must be identical).
        check_naive: also run the naive search (subset contract).
        check_strict: also run strict-merge branch-and-bound (subset
            contract).
        check_sharded: also run the sharded coordinator (inline mode)
            at each shard count in ``sharded_shards`` — complete by
            Theorem 1 plus the coordinator's cancellation rule, so it
            is held to the exact tie-class contract.
        sharded_shards: shard counts for the sharded legs.
        label: case label embedded in failure messages.

    Returns:
        A :class:`DifferentialReport`.

    Raises:
        DifferentialFailure: on the first disagreement.
    """
    params = params or SearchParams(k=3, diameter=3)
    complete = dataclasses.replace(params, strict_merge=False)
    system = CIRankSystem.from_database(
        db, weights=weights, search_params=complete
    )
    report = DifferentialReport(label=label)
    try:
        match = system.matcher.match(query)
    except EvaluationError:
        # No analyzable keywords: the facade raises too; nothing to diff.
        report.trivial = True
        return report

    if params.semantics == "or":
        matchable = any(match.per_keyword.values())
    else:
        matchable = match.matchable
    if not matchable:
        for algorithm in ("branch-and-bound", "naive"):
            answers = system.search(query, algorithm=algorithm)
            if answers:
                raise DifferentialFailure(
                    algorithm, label,
                    "returned answers for an unmatchable query",
                )
        report.trivial = True
        report.engines = ["branch-and-bound", "naive"]
        return report

    graph = system.graph
    scorer = system.scorer_for(match)
    scores: Dict[JoinedTupleTree, float] = {}
    for tree in exhaustive_answers(
        graph, match, params.diameter, max_nodes, params.semantics
    ):
        truth = oracle_tree_score(
            graph, tree, match, system.index, system.dampening
        )
        fast = scorer.score(tree)
        if not _close(fast, truth):
            raise DifferentialFailure(
                "scorer", label,
                f"vectorized score {fast!r} != path-product oracle "
                f"{truth!r} on tree {sorted(tree.nodes)}",
            )
        scores[tree] = truth
    report.answers_enumerated = len(scores)
    oracle_topk = exhaustive_topk(scores, params.k)
    report.topk = oracle_topk

    bnb = system.search(query)
    _check_exact_topk("branch-and-bound", label, bnb, oracle_topk, scores)
    report.engines.append("branch-and-bound")

    # Both lazy candidate representations must be interchangeable with
    # each other and the oracle: the flat arena (the system default —
    # usually already exercised by the leg above) and the per-object
    # reference path.  Exact top-k tie-class agreement, like every
    # complete leg.
    if (
        system.last_search_stats is not None
        and system.last_search_stats.engine == "arena"
    ):
        report.engines.append("arena-engine")
    else:
        search = BranchAndBoundSearch(
            graph, scorer, match,
            dataclasses.replace(complete, lazy_bounds=True, engine="arena"),
        )
        _check_exact_topk(
            "arena-engine", label, search.run(), oracle_topk, scores
        )
        report.engines.append("arena-engine")
    search = BranchAndBoundSearch(
        graph, scorer, match,
        dataclasses.replace(complete, lazy_bounds=True, engine="object"),
    )
    _check_exact_topk(
        "object-engine", label, search.run(), oracle_topk, scores
    )
    report.engines.append("object-engine")

    # Lazy bound tightening (the default) and eager per-candidate bounds
    # must be interchangeable: both are admissible, so both are exact.
    eager = dataclasses.replace(complete, lazy_bounds=False)
    search = BranchAndBoundSearch(graph, scorer, match, eager)
    _check_exact_topk("eager-bounds", label, search.run(), oracle_topk, scores)
    report.engines.append("eager-bounds")

    # A repeated identical query must come back from the answer cache
    # (same object sequence — the cache stores the proven result) and
    # still satisfy the exactness contract.
    if system.answer_cache.enabled:
        before = system.answer_cache.stats().hits
        warm = system.search(query)
        after = system.answer_cache.stats()
        if after.hits != before + 1:
            raise DifferentialFailure(
                "answer-cache", label,
                f"repeated query was not served from the cache "
                f"(hits {before} -> {after.hits})",
            )
        if [(a.tree, a.score) for a in warm] != [
            (a.tree, a.score) for a in bnb
        ]:
            raise DifferentialFailure(
                "answer-cache", label,
                "warm-cache result differs from the cold search result",
            )
        _check_exact_topk("answer-cache", label, warm, oracle_topk, scores)
        report.engines.append("answer-cache")

    if check_indexes:
        horizon = max(1, params.diameter)
        pairs = PairsIndex(graph, system.dampening, horizon=horizon)
        star = StarIndex(graph, system.dampening, horizon=horizon)
        for name, index in (("pairs-index", pairs), ("star-index", star)):
            search = BranchAndBoundSearch(
                graph, scorer, match, complete, index=index
            )
            _check_exact_topk(name, label, search.run(), oracle_topk, scores)
            report.engines.append(name)

    if check_sharded:
        # The sharded coordinator must be tie-class-identical to the
        # single-process engines at every shard count: partitioning,
        # halo widening, score slicing, and bound-based cancellation
        # all preserve exactness (repro.search.sharded's certificate).
        from ..graph.partition import partition_graph
        from ..search.sharded import ShardedSearch

        for n_shards in sharded_shards:
            partition = partition_graph(
                graph, system.importance, system.dampening,
                n_shards, complete.diameter,
                inverted_index=system.index,
                graph_index=system.graph_index,
            )
            sharded = ShardedSearch(
                partition, match,
                dataclasses.replace(
                    complete, engine="sharded", shards=n_shards
                ),
            )
            name = f"sharded-{n_shards}"
            _check_exact_topk(name, label, sharded.run(), oracle_topk, scores)
            report.engines.append(name)

    if check_naive:
        naive = system.search(query, algorithm="naive")
        _check_subset_topk("naive", label, naive, oracle_topk, scores)
        report.engines.append("naive")

    if check_strict:
        strict = dataclasses.replace(params, strict_merge=True)
        search = BranchAndBoundSearch(graph, scorer, match, strict)
        _check_subset_topk(
            "strict-merge", label, search.run(), oracle_topk, scores
        )
        report.engines.append("strict-merge")

    return report


def check_case(case: GeneratedCase, **kwargs) -> DifferentialReport:
    """Run :func:`differential_check` on one generated case."""
    return differential_check(
        case.db,
        case.query,
        case.params,
        weights=case.weights,
        label=case.describe(),
        **kwargs,
    )
