"""Replayable failure corpus: (de)serialization of differential cases.

Every Hypothesis counterexample gets serialized to a small JSON document
and dropped into ``tests/corpus/``; the corpus-replay test re-runs each
file as a plain deterministic regression test, so a counterexample found
once keeps failing loudly until the bug is actually fixed — independent
of Hypothesis' own example database.

The JSON encodes the *inputs* only (schema, rows, links, weights, query,
params, and the generating seed when known); the database is rebuilt
through the normal :class:`~repro.db.database.Database` API on load, so
corpus files stay valid across internal representation changes.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Union

from ..config import EdgeWeights, SearchParams
from ..db.database import Database
from ..db.schema import Column, ForeignKey, ManyToMany, Schema, Table
from .generators import GeneratedCase, GeneratorConfig

#: Format marker so future layout changes can stay backward compatible.
CORPUS_FORMAT = 1


# -------------------------------------------------------------- to JSON


def _schema_to_dict(schema: Schema) -> Dict:
    tables = []
    for table in schema:
        tables.append({
            "name": table.name,
            "primary_key": table.primary_key,
            "columns": [
                {
                    "name": column.name,
                    "type": column.type,
                    "searchable": column.searchable,
                }
                for column in table.columns.values()
            ],
            "foreign_keys": [
                {
                    "name": fk.name,
                    "column": fk.column,
                    "references": fk.references,
                    "nullable": fk.nullable,
                }
                for fk in table.foreign_keys.values()
            ],
        })
    links = [
        {"name": m2m.name, "table_a": m2m.table_a, "table_b": m2m.table_b}
        for m2m in schema.many_to_many.values()
    ]
    return {"tables": tables, "many_to_many": links}


def case_to_dict(case: GeneratedCase) -> Dict:
    """Serialize one case to a JSON-compatible dict."""
    db = case.db
    rows = {
        table.name: [
            {"pk": row.pk, "values": dict(row.values)}
            for row in db.rows(table.name)
        ]
        for table in db.schema
    }
    links = [
        {"link": name, "a": pk_a, "b": pk_b}
        for name, pk_a, pk_b in db.links()
    ]
    return {
        "format": CORPUS_FORMAT,
        "seed": case.seed,
        "query": case.query,
        "params": {
            "k": case.params.k,
            "diameter": case.params.diameter,
            "strict_merge": case.params.strict_merge,
            "max_candidates": case.params.max_candidates,
            "semantics": case.params.semantics,
            "engine": case.params.engine,
        },
        "weights": {
            "default": case.weights.default,
            "entries": [
                {"source": source, "target": target, "weight": weight}
                for (source, target), weight in sorted(
                    case.weights.weights.items()
                )
            ],
        },
        "schema": _schema_to_dict(db.schema),
        "rows": rows,
        "links": links,
    }


# ------------------------------------------------------------ from JSON


def _schema_from_dict(data: Dict) -> Schema:
    tables = []
    for spec in data["tables"]:
        columns = [
            Column(c["name"], c.get("type", "text"), c.get("searchable", True))
            for c in spec["columns"]
        ]
        fks = [
            ForeignKey(
                f["name"], f["column"], f["references"],
                f.get("nullable", True),
            )
            for f in spec.get("foreign_keys", [])
        ]
        tables.append(Table(
            spec["name"], columns, foreign_keys=fks,
            primary_key=spec.get("primary_key", "id"),
        ))
    links = [
        ManyToMany(m["name"], m["table_a"], m["table_b"])
        for m in data.get("many_to_many", [])
    ]
    return Schema(tables, many_to_many=links)


def case_from_dict(data: Dict) -> GeneratedCase:
    """Rebuild a case from its JSON dict via the normal Database API."""
    if data.get("format", 1) != CORPUS_FORMAT:
        raise ValueError(f"unknown corpus format {data.get('format')!r}")
    schema = _schema_from_dict(data["schema"])
    db = Database(schema)
    for table_name, rows in data["rows"].items():
        for row in rows:
            db.insert(table_name, row["pk"], **row["values"])
    for link in data.get("links", []):
        db.link(link["link"], link["a"], link["b"])
    weights_spec = data.get("weights", {})
    weights = EdgeWeights(
        weights={
            (entry["source"], entry["target"]): entry["weight"]
            for entry in weights_spec.get("entries", [])
        },
        default=weights_spec.get("default", 1.0),
    )
    p = data["params"]
    params = SearchParams(
        k=p["k"],
        diameter=p["diameter"],
        strict_merge=p.get("strict_merge", True),
        max_candidates=p.get("max_candidates", 0),
        semantics=p.get("semantics", "and"),
        engine=p.get("engine", "arena"),
    )
    return GeneratedCase(
        seed=data.get("seed", -1),
        db=db,
        weights=weights,
        query=data["query"],
        params=params,
        config=GeneratorConfig(),
    )


# ------------------------------------------------------------- file I/O


def save_case(case: GeneratedCase, path: Union[str, Path]) -> Path:
    """Write one case to ``path`` as pretty-printed JSON."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(
        json.dumps(case_to_dict(case), indent=2, sort_keys=True) + "\n"
    )
    return path


def load_case(path: Union[str, Path]) -> GeneratedCase:
    """Load one corpus file back into a runnable case."""
    return case_from_dict(json.loads(Path(path).read_text()))


def save_counterexample(
    case: GeneratedCase,
    corpus_dir: Union[str, Path],
    reason: str = "",
) -> Optional[Path]:
    """Persist a failing case into the corpus directory (idempotent).

    The filename is derived from the seed so the same counterexample is
    not re-saved on every shrink iteration.  Returns the path written,
    or None when the file already exists.
    """
    corpus_dir = Path(corpus_dir)
    name = f"case_seed_{case.seed}.json"
    path = corpus_dir / name
    if path.exists():
        return None
    data = case_to_dict(case)
    if reason:
        data["reason"] = reason
    corpus_dir.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    return path


def load_corpus(corpus_dir: Union[str, Path]) -> List[Path]:
    """All corpus files, sorted for deterministic test ordering."""
    corpus_dir = Path(corpus_dir)
    if not corpus_dir.is_dir():
        return []
    return sorted(corpus_dir.glob("*.json"))
