"""Differential-testing harness: generators, oracles, failure corpus.

This subpackage is the standing safety net for the optimized stack: it
generates small random (database, query, params) cases, scores the
complete answer space with brute-force re-implementations of every
formula, and asserts the production engines agree.  See docs/TESTING.md
for the overview and ``tests/test_properties_*.py`` for the property
suites built on top of it.
"""

from .corpus import (
    case_from_dict,
    case_to_dict,
    load_case,
    load_corpus,
    save_case,
    save_counterexample,
)
from .generators import (
    DEFAULT_VOCAB,
    GeneratedCase,
    GeneratorConfig,
    random_case,
    random_database,
    random_multi_star_graph,
    random_params,
    random_query,
    random_schema,
    random_subtree,
    random_weights,
)
from .oracles import (
    DifferentialFailure,
    DifferentialReport,
    check_case,
    differential_check,
    exhaustive_answers,
    exhaustive_topk,
    oracle_delivery,
    oracle_generation,
    oracle_node_scores,
    oracle_pagerank,
    oracle_tree_score,
)

__all__ = [
    "DEFAULT_VOCAB",
    "DifferentialFailure",
    "DifferentialReport",
    "GeneratedCase",
    "GeneratorConfig",
    "case_from_dict",
    "case_to_dict",
    "check_case",
    "differential_check",
    "exhaustive_answers",
    "exhaustive_topk",
    "load_case",
    "load_corpus",
    "oracle_delivery",
    "oracle_generation",
    "oracle_node_scores",
    "oracle_pagerank",
    "oracle_tree_score",
    "random_case",
    "random_database",
    "random_multi_star_graph",
    "random_params",
    "random_query",
    "random_schema",
    "random_subtree",
    "random_weights",
    "save_case",
    "save_counterexample",
]
