"""Seeded random generators for schemas, databases, graphs, and queries.

The differential oracle (:mod:`repro.testing.oracles`) needs an endless
supply of *small but structurally diverse* inputs: random schemas (tables,
foreign keys, m:n links including self-links), random databases over
them, random edge-weight tables, and random keyword queries whose
keyword-overlap structure is tunable.  Everything here is driven by an
explicit integer seed, so any failing case is reproducible from a single
number — :func:`random_case` is the one-stop entry point.

Size/fanout/overlap knobs live on :class:`GeneratorConfig`; the defaults
produce graphs of ~6-12 nodes, small enough for exhaustive answer
enumeration yet large enough to exercise merges, redundant keyword
coverage, diameter boundaries, and index decompositions.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config import EdgeWeights, SearchParams
from ..db.database import Database
from ..db.schema import Column, ForeignKey, ManyToMany, Schema, Table
from ..graph.datagraph import DataGraph
from ..model.jtt import JoinedTupleTree

#: Words the generated rows draw from.  All survive the default analyzer
#: (no stopwords, length >= 1) and stay distinct under Porter stemming.
DEFAULT_VOCAB: Tuple[str, ...] = (
    "apple", "berry", "cedar", "delta", "ember", "frost",
    "gale", "holly", "iris", "jade",
)


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs of the random case generator.

    Attributes:
        min_tables / max_tables: schema size range.
        min_rows / max_rows: per-table cardinality range.
        fk_prob: probability a table declares a foreign key to an
            earlier table (insertion stays a DAG, so FK targets always
            exist).
        self_link_prob: probability the schema gains a citation-style
            self m:n link on one table.
        extra_links: m:n link instances added beyond the spanning set
            that keeps the row graph mostly connected.
        vocab_size: how many distinct words the rows draw from.
        hot_words: size of the "hot" vocabulary prefix shared across
            many rows — the keyword-overlap knob (more hot draws means
            more nodes matching the same keyword, hence more merges and
            redundant-coverage answers during search).
        hot_prob: probability one drawn word comes from the hot prefix.
        min_words / max_words: words per row.
        max_query_keywords: upper bound on query length.
        unmatched_query_prob: probability the query includes a word
            absent from the database (exercises the empty-result path).
        diameter_choices: diameter caps the generated params draw from.
        k_choices: top-k sizes the generated params draw from.
        weight_choices: the random per-edge-type weight pool.
    """

    min_tables: int = 1
    max_tables: int = 3
    min_rows: int = 2
    max_rows: int = 5
    fk_prob: float = 0.4
    self_link_prob: float = 0.3
    extra_links: int = 3
    vocab_size: int = 6
    hot_words: int = 2
    hot_prob: float = 0.55
    min_words: int = 1
    max_words: int = 3
    max_query_keywords: int = 2
    unmatched_query_prob: float = 0.06
    diameter_choices: Tuple[int, ...] = (2, 3, 4)
    k_choices: Tuple[int, ...] = (1, 3, 5)
    weight_choices: Tuple[float, ...] = (0.1, 0.5, 1.0)


@dataclass
class GeneratedCase:
    """One reproducible (database, query, params) differential case.

    Attributes:
        seed: the generating seed (sufficient to regenerate everything).
        db: the generated database.
        weights: the generated edge-weight table.
        query: the keyword query text.
        params: the generated search parameters.
    """

    seed: int
    db: Database
    weights: EdgeWeights
    query: str
    params: SearchParams
    config: GeneratorConfig = field(default_factory=GeneratorConfig)

    def describe(self) -> str:
        """One-line summary for failure messages."""
        sizes = {t.name: self.db.count(t.name) for t in self.db.schema}
        return (
            f"seed={self.seed} query={self.query!r} k={self.params.k} "
            f"D={self.params.diameter} semantics={self.params.semantics} "
            f"tables={sizes} links={self.db.link_count()}"
        )


# ---------------------------------------------------------------- schema


def random_schema(rng: random.Random, config: Optional[GeneratorConfig] = None) -> Schema:
    """A random schema: 1-3 tables, optional FKs, m:n links, self-links.

    Tables are named ``t0, t1, ...`` with one searchable ``body`` column
    (and occasionally a second, non-searchable numeric column, so the
    text() concatenation path with absent values is exercised).  Foreign
    keys always reference an earlier table, keeping insertion order
    valid.
    """
    config = config or GeneratorConfig()
    count = rng.randint(config.min_tables, config.max_tables)
    tables: List[Table] = []
    for i in range(count):
        columns = [Column("body")]
        if rng.random() < 0.3:
            columns.append(Column("rank", "integer", searchable=False))
        fks = []
        if i > 0 and rng.random() < config.fk_prob:
            target = f"t{rng.randrange(i)}"
            fks.append(ForeignKey(f"fk{i}", f"{target}_id", target))
        tables.append(Table(f"t{i}", columns, foreign_keys=fks))
    links: List[ManyToMany] = []
    for i in range(count):
        for j in range(i + 1, count):
            if rng.random() < 0.7:
                links.append(ManyToMany(f"l{i}_{j}", f"t{i}", f"t{j}"))
    if rng.random() < config.self_link_prob:
        owner = rng.randrange(count)
        links.append(ManyToMany(f"self{owner}", f"t{owner}", f"t{owner}"))
    if count > 1 and not links and not any(t.foreign_keys for t in tables):
        # guarantee at least one relationship type so rows can connect
        links.append(ManyToMany("l0_1", "t0", "t1"))
    return Schema(tables, many_to_many=links)


def _random_text(rng: random.Random, vocab: List[str], config: GeneratorConfig) -> str:
    hot = vocab[: config.hot_words]
    words = []
    for _ in range(rng.randint(config.min_words, config.max_words)):
        pool = hot if (hot and rng.random() < config.hot_prob) else vocab
        words.append(rng.choice(pool))
    return " ".join(words)


def random_database(
    rng: random.Random,
    schema: Schema,
    config: Optional[GeneratorConfig] = None,
) -> Database:
    """Populate ``schema`` with random rows and link instances."""
    config = config or GeneratorConfig()
    vocab = list(DEFAULT_VOCAB[: max(1, config.vocab_size)])
    db = Database(schema)
    pks: Dict[str, List[int]] = {}
    for table in schema:
        pks[table.name] = []
        for pk in range(1, rng.randint(config.min_rows, config.max_rows) + 1):
            values: Dict[str, object] = {"body": _random_text(rng, vocab, config)}
            if "rank" in table.columns:
                values["rank"] = rng.randint(0, 9)
            for fk in table.foreign_keys.values():
                targets = pks[fk.references.lower()]
                if targets and rng.random() < 0.8:
                    values[fk.column] = rng.choice(targets)
            db.insert(table.name, pk, **values)
            pks[table.name].append(pk)

    for m2m in schema.many_to_many.values():
        side_a = pks[m2m.table_a.lower()]
        side_b = pks[m2m.table_b.lower()]
        if not side_a or not side_b:
            continue
        # a spanning pass keeps the graph mostly connected, then extras
        wanted = min(len(side_a), len(side_b)) + rng.randint(0, config.extra_links)
        for _ in range(wanted):
            pk_a, pk_b = rng.choice(side_a), rng.choice(side_b)
            if m2m.table_a.lower() == m2m.table_b.lower() and pk_a == pk_b:
                continue
            db.link(m2m.name, pk_a, pk_b)
    return db


def random_weights(
    rng: random.Random,
    schema: Schema,
    config: Optional[GeneratorConfig] = None,
) -> EdgeWeights:
    """A random Table-II-style weight table for the schema's edge types."""
    config = config or GeneratorConfig()
    weights = EdgeWeights(weights={}, default=1.0)
    for source, link, target in schema.relationship_types():
        if source == target:
            # self-relationship: asymmetric weights keyed by link name
            weights.set_weight(f"{source}#{link}", target,
                               rng.choice(config.weight_choices))
            weights.set_weight(source, f"{target}#{link}",
                               rng.choice(config.weight_choices))
        else:
            weights.set_weight(source, target, rng.choice(config.weight_choices))
            weights.set_weight(target, source, rng.choice(config.weight_choices))
    return weights


def random_query(
    rng: random.Random,
    db: Database,
    config: Optional[GeneratorConfig] = None,
) -> str:
    """A 1..max_query_keywords keyword query biased toward present words."""
    config = config or GeneratorConfig()
    present: List[str] = []
    for table in db.schema:
        for row in db.rows(table.name):
            present.extend(str(row.values.get("body", "")).split())
    if not present:
        return DEFAULT_VOCAB[0]
    count = rng.randint(1, max(1, config.max_query_keywords))
    words = [rng.choice(present) for _ in range(count)]
    if rng.random() < config.unmatched_query_prob:
        words.append("zzzmissing")
    # de-duplicate preserving order (the analyzer does the same)
    seen = set()
    out = [w for w in words if not (w in seen or seen.add(w))]
    return " ".join(out)


def random_params(
    rng: random.Random,
    config: Optional[GeneratorConfig] = None,
) -> SearchParams:
    """Random search parameters within the generator's envelope."""
    config = config or GeneratorConfig()
    return SearchParams(
        k=rng.choice(config.k_choices),
        diameter=rng.choice(config.diameter_choices),
        semantics="or" if rng.random() < 0.2 else "and",
    )


def random_case(
    seed: int, config: Optional[GeneratorConfig] = None
) -> GeneratedCase:
    """The one-stop generator: seed -> (db, weights, query, params)."""
    config = config or GeneratorConfig()
    rng = random.Random(seed)
    schema = random_schema(rng, config)
    db = random_database(rng, schema, config)
    weights = random_weights(rng, schema, config)
    query = random_query(rng, db, config)
    params = random_params(rng, config)
    return GeneratedCase(seed, db, weights, query, params, config)


# ----------------------------------------------------- graph-level helpers


def random_multi_star_graph(
    rng: random.Random,
    hubs: int = 3,
    leaves_per_hub: int = 3,
    hub_relations: int = 2,
) -> DataGraph:
    """A connected graph whose edge cover needs several star relations.

    Hubs alternate between ``hub0..hub{hub_relations-1}`` relations and
    form a chain; every leaf (relation ``leaf``) hangs off one hub.  All
    edges touch a hub, so ``{hub*}`` is a valid star cover, and with
    more than one hub relation the star index must run its case-2/3
    decompositions between leaves of different hubs.
    """
    g = DataGraph()
    vocab = DEFAULT_VOCAB
    hub_ids = []
    for h in range(hubs):
        relation = f"hub{h % max(1, hub_relations)}"
        hub_ids.append(g.add_node(relation, rng.choice(vocab)))
    for a, b in zip(hub_ids, hub_ids[1:]):
        g.add_link(a, b, rng.choice([0.5, 1.0]), rng.choice([0.1, 0.5, 1.0]))
    for hub in hub_ids:
        for _ in range(rng.randint(1, leaves_per_hub)):
            leaf = g.add_node("leaf", rng.choice(vocab))
            g.add_link(hub, leaf, rng.choice([0.5, 1.0]),
                       rng.choice([0.1, 0.5, 1.0]))
    return g


def random_subtree(
    rng: random.Random, graph: DataGraph, max_nodes: int = 5
) -> JoinedTupleTree:
    """A random connected subtree of ``graph`` (for message-pass tests)."""
    start = rng.randrange(graph.node_count)
    tree = JoinedTupleTree.single(start)
    while len(tree.nodes) < max_nodes:
        frontier = [
            (node, nbr)
            for node in tree.nodes
            for nbr in sorted(graph.neighbors(node))
            if nbr not in tree.nodes
        ]
        if not frontier:
            break
        node, nbr = rng.choice(frontier)
        tree = tree.with_edge(node, nbr)
    return tree
