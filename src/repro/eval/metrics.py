"""Effectiveness metrics (Section VI-B).

* **Reciprocal rank** — the inverse rank of the best answer; 0 when the
  best answer is absent from the returned list.  Ties in the ground
  truth ("in the case of a tie, all of the answers are considered the
  best") mean any best-set member counts.
* **Mean reciprocal rank** — average over queries.
* **Graded precision** — the fraction of returned answers that are
  relevant, with a relevant answer that misses keywords "penalized by
  the percentage of the missed keywords".
"""

from __future__ import annotations

from typing import FrozenSet, Iterable, Sequence

from ..exceptions import EvaluationError


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean; raises on an empty input (a silent 0 would read
    as a terrible score rather than a harness bug)."""
    values = list(values)
    if not values:
        raise EvaluationError("cannot average zero values")
    return sum(values) / len(values)


def reciprocal_rank(
    ranked_nodesets: Sequence[FrozenSet[int]],
    best_nodesets: Iterable[FrozenSet[int]],
) -> float:
    """1 / rank of the first best answer in the ranking (0 if absent).

    Args:
        ranked_nodesets: node sets of the returned answers, best first.
        best_nodesets: node sets considered "the best answer" (ties all
            count).
    """
    best = set(best_nodesets)
    if not best:
        raise EvaluationError("best_nodesets must be non-empty")
    for position, nodes in enumerate(ranked_nodesets, start=1):
        if nodes in best:
            return 1.0 / position
    return 0.0


def mean_reciprocal_rank(per_query_rr: Iterable[float]) -> float:
    """MRR across queries."""
    return mean(per_query_rr)


def graded_precision(
    relevances: Sequence[float],
) -> float:
    """Average graded relevance of a returned list (0 for empty lists).

    The caller supplies one grade per returned answer, each already
    penalized for missing keywords (see
    :meth:`repro.eval.relevance.RelevanceOracle.grade`).
    """
    if not relevances:
        return 0.0
    for grade in relevances:
        if not 0.0 <= grade <= 1.0:
            raise EvaluationError(f"relevance grade {grade} out of [0, 1]")
    return sum(relevances) / len(relevances)
