"""Effectiveness and efficiency harnesses (Section VI).

:class:`EffectivenessHarness` reproduces the Fig. 6-9 protocol: per-query
candidate pools (plus the oracle's best answers, force-included so a pool
miss never masquerades as a ranking failure), ranked by each scoring
function, measured by MRR and graded precision.

:class:`EfficiencyHarness` reproduces the Fig. 10-12 protocol: wall-clock
timing of the naive, branch-and-bound, and index-assisted searches over a
set of queries.
"""

from __future__ import annotations

import hashlib
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..config import RWMPParams, SearchParams
from ..baselines.banks import BanksScorer
from ..baselines.discover2 import Discover2Scorer
from ..baselines.spark import SparkScorer
from ..datasets.workloads import EvalQuery
from ..exceptions import EvaluationError, InvalidTreeError
from ..graph.datagraph import DataGraph
from ..importance.pagerank import ImportanceVector
from ..model.jtt import JoinedTupleTree
from ..rwmp.dampening import DampeningModel
from ..rwmp.scoring import RWMPScorer
from ..search.branch_and_bound import BranchAndBoundSearch
from ..search.naive import NaiveSearch
from ..text.inverted_index import InvertedIndex
from ..text.matcher import KeywordMatcher, MatchSets
from .metrics import graded_precision, mean_reciprocal_rank, reciprocal_rank
from .pool import build_pool
from .relevance import RelevanceOracle

#: Names of the ranking systems the comparison benches use.
CI_RANK = "CI-Rank"
SPARK = "SPARK"
BANKS = "BANKS"
DISCOVER2 = "DISCOVER2"


@dataclass
class EffectivenessResult:
    """Aggregated effectiveness of one system on one workload.

    Attributes:
        system: system name.
        mrr: mean reciprocal rank.
        precision: mean graded precision of the top-n lists.
        per_query_rr: reciprocal rank per query (workload order).
        per_query_precision: graded precision per query.
        per_kind_rr: mean reciprocal rank per query kind — the paper
            attributes the effectiveness gaps to specific kinds ("long
            queries that match three or more non-free nodes", queries
            needing free connector nodes), so the breakdown is reported.
    """

    system: str
    mrr: float
    precision: float
    per_query_rr: List[float] = field(default_factory=list)
    per_query_precision: List[float] = field(default_factory=list)
    per_kind_rr: Dict[str, float] = field(default_factory=dict)


def tree_from_nodeset(
    graph: DataGraph, nodes: Sequence[int]
) -> Optional[JoinedTupleTree]:
    """Build a spanning tree over ``nodes`` if they induce a connected
    subgraph (used to force oracle answers into pools); None otherwise."""
    node_set = set(nodes)
    if not node_set:
        return None
    start = min(node_set)
    edges = []
    seen = {start}
    frontier = [start]
    while frontier:
        node = frontier.pop()
        for nbr in sorted(graph.neighbors(node)):
            if nbr in node_set and nbr not in seen:
                seen.add(nbr)
                edges.append((node, nbr))
                frontier.append(nbr)
    if seen != node_set:
        return None
    try:
        return JoinedTupleTree(node_set, edges)
    except InvalidTreeError:  # pragma: no cover - defensive
        return None


class EffectivenessHarness:
    """Pools answers once per query; ranks them under each system.

    Args:
        graph: the data graph.
        index: the inverted index.
        importance: the precomputed importance vector (shared by all
            parameter settings — Equation (1) does not depend on
            alpha/g).
        queries: the evaluation workload.
        diameter: the answer diameter cap.
        top_n: list length for the precision metric (the paper reports
            top-5 answers in the efficiency section; we use the same).
        max_pool: per-query pool cap.
    """

    def __init__(
        self,
        graph: DataGraph,
        index: InvertedIndex,
        importance: ImportanceVector,
        queries: Sequence[EvalQuery],
        diameter: int = 4,
        top_n: int = 5,
        max_pool: int = 200,
    ) -> None:
        if not queries:
            raise EvaluationError("workload must contain at least one query")
        self.graph = graph
        self.index = index
        self.importance = importance
        self.queries = list(queries)
        self.diameter = diameter
        self.top_n = top_n
        self.max_pool = max_pool
        self.matcher = KeywordMatcher(index)
        self._pools: Dict[str, Tuple[MatchSets, List[JoinedTupleTree]]] = {}

    # --------------------------------------------------------------- pools

    def pool_for(self, query: EvalQuery) -> Tuple[MatchSets, List[JoinedTupleTree]]:
        """The (cached) match sets and candidate pool of one query."""
        cached = self._pools.get(query.text)
        if cached is not None:
            return cached
        match = self.matcher.match(query.text)
        scorer = self._cirank_scorer(match, RWMPParams())
        pool = build_pool(
            self.graph, scorer, match, self.diameter, self.max_pool
        )
        present = {frozenset(t.nodes) for t in pool}
        for nodeset in query.best_nodesets:
            if nodeset in present:
                continue
            tree = tree_from_nodeset(self.graph, sorted(nodeset))
            if tree is not None and tree.covers(match) and tree.is_reduced(match):
                pool.append(tree)
        self._pools[query.text] = (match, pool)
        return match, pool

    # ------------------------------------------------------------- scoring

    def _cirank_scorer(self, match: MatchSets, params: RWMPParams) -> RWMPScorer:
        dampening = DampeningModel(self.importance, params)
        return RWMPScorer(self.graph, self.index, match, dampening)

    def _system_scorer(
        self, system: str, match: MatchSets, params: RWMPParams
    ) -> Callable[[JoinedTupleTree], float]:
        if system == CI_RANK:
            return self._cirank_scorer(match, params).score
        if system == SPARK:
            return SparkScorer(self.index, match).score
        if system == BANKS:
            return BanksScorer(self.graph, match).score
        if system == DISCOVER2:
            return Discover2Scorer(self.index, match).score
        raise EvaluationError(f"unknown system {system!r}")

    @staticmethod
    def rank(
        pool: Sequence[JoinedTupleTree],
        score: Callable[[JoinedTupleTree], float],
    ) -> List[JoinedTupleTree]:
        """Deterministically rank a pool under a scoring function.

        Score ties break by tree size and then by a stable *hash* of the
        node set — deliberately uncorrelated with node ids, because ids
        follow dataset insertion order, which follows popularity; an
        id-based tie-break would leak the ground-truth signal into
        importance-blind baselines and flatter them.
        """
        def tie_hash(tree: JoinedTupleTree) -> str:
            payload = ",".join(str(n) for n in sorted(tree.nodes))
            return hashlib.md5(payload.encode("ascii")).hexdigest()

        return sorted(
            pool,
            key=lambda t: (-score(t), len(t.nodes), tie_hash(t)),
        )

    # ------------------------------------------------------------ evaluate

    def evaluate_system(
        self, system: str, params: Optional[RWMPParams] = None
    ) -> EffectivenessResult:
        """MRR and precision of one system over the whole workload."""
        params = params or RWMPParams()
        rr_list: List[float] = []
        precision_list: List[float] = []
        kind_rr: Dict[str, List[float]] = {}
        for query in self.queries:
            match, pool = self.pool_for(query)
            score = self._system_scorer(system, match, params)
            ranked = self.rank(pool, score)
            oracle = RelevanceOracle(query, match)
            nodesets = [frozenset(t.nodes) for t in ranked]
            rr = reciprocal_rank(nodesets, query.best_nodesets)
            rr_list.append(rr)
            kind_rr.setdefault(query.kind, []).append(rr)
            top = ranked[: self.top_n]
            precision_list.append(graded_precision(oracle.grades(top)))
        return EffectivenessResult(
            system=system,
            mrr=mean_reciprocal_rank(rr_list),
            precision=(
                sum(precision_list) / len(precision_list)
            ),
            per_query_rr=rr_list,
            per_query_precision=precision_list,
            per_kind_rr={
                kind: sum(values) / len(values)
                for kind, values in sorted(kind_rr.items())
            },
        )

    def compare(
        self,
        systems: Sequence[str] = (SPARK, BANKS, CI_RANK),
        params: Optional[RWMPParams] = None,
    ) -> Dict[str, EffectivenessResult]:
        """Evaluate several systems over the same pools (Figs. 8-9)."""
        return {s: self.evaluate_system(s, params) for s in systems}

    def sweep_cirank(
        self, settings: Sequence[RWMPParams]
    ) -> List[Tuple[RWMPParams, EffectivenessResult]]:
        """Evaluate CI-Rank across parameter settings (Figs. 6-7)."""
        return [
            (params, self.evaluate_system(CI_RANK, params))
            for params in settings
        ]


# ---------------------------------------------------------------- timing


@dataclass
class TimingResult:
    """Wall-clock timing of one configuration over a workload.

    Attributes:
        label: configuration name.
        per_query_seconds: per-query elapsed times (workload order).
        per_query_expansions: candidates expanded per query (search
            configurations only) — the deterministic work measure the
            benches assert on, immune to machine-load noise.
    """

    label: str
    per_query_seconds: List[float] = field(default_factory=list)
    per_query_expansions: List[int] = field(default_factory=list)

    @property
    def mean_seconds(self) -> float:
        if not self.per_query_seconds:
            raise EvaluationError("no timings recorded")
        return sum(self.per_query_seconds) / len(self.per_query_seconds)

    @property
    def total_seconds(self) -> float:
        return sum(self.per_query_seconds)

    @property
    def total_expansions(self) -> int:
        return sum(self.per_query_expansions)


class EfficiencyHarness:
    """Times search configurations over a workload (Figs. 10-12)."""

    def __init__(
        self,
        graph: DataGraph,
        index: InvertedIndex,
        importance: ImportanceVector,
        query_texts: Sequence[str],
        params: Optional[RWMPParams] = None,
    ) -> None:
        if not query_texts:
            raise EvaluationError("need at least one query")
        self.graph = graph
        self.index = index
        self.importance = importance
        self.query_texts = list(query_texts)
        self.params = params or RWMPParams()
        self.matcher = KeywordMatcher(index)
        self.dampening = DampeningModel(self.importance, self.params)

    def _scorer(self, match: MatchSets) -> RWMPScorer:
        return RWMPScorer(self.graph, self.index, match, self.dampening)

    def time_naive(
        self,
        search_params: SearchParams,
        max_paths_per_source: int = 8,
        max_answers_per_root: int = 64,
    ) -> TimingResult:
        """Time the naive algorithm per query."""
        result = TimingResult(label="naive")
        for text in self.query_texts:
            match = self.matcher.match(text)
            scorer = self._scorer(match)
            search = NaiveSearch(
                self.graph, scorer, match, search_params,
                max_paths_per_source=max_paths_per_source,
                max_answers_per_root=max_answers_per_root,
            )
            start = time.perf_counter()
            search.run()
            result.per_query_seconds.append(time.perf_counter() - start)
        return result

    def time_branch_and_bound(
        self,
        search_params: SearchParams,
        index: Optional[object] = None,
        label: str = "branch-and-bound",
    ) -> TimingResult:
        """Time the B&B search (optionally index-assisted) per query."""
        result = TimingResult(label=label)
        for text in self.query_texts:
            match = self.matcher.match(text)
            scorer = self._scorer(match)
            search = BranchAndBoundSearch(
                self.graph, scorer, match, search_params, index=index
            )
            start = time.perf_counter()
            search.run()
            result.per_query_seconds.append(time.perf_counter() - start)
            result.per_query_expansions.append(search.stats.expanded)
        return result
