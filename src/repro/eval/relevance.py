"""The relevance oracle — the user-study substitute (DESIGN.md §2).

The paper's ground truth comes from five graduate students voting on the
best answer per query.  Our workload queries are *generated from* known
target tuples, so the oracle can grade answers mechanically:

* an answer is **relevant** when it contains every intended target node
  (it then necessarily connects them — answers are trees);
* the **best** answers additionally route through a maximally popular
  connector (``best_nodesets``, computed at generation time from the raw
  ``votes`` / ``citations`` attribute — independent of any ranking model
  under test);
* a relevant answer missing query keywords is penalized by the missed
  fraction, mirroring Section VI-B's graded relevance.
"""

from __future__ import annotations

from typing import List, Sequence

from ..datasets.workloads import EvalQuery
from ..model.jtt import JoinedTupleTree
from ..text.matcher import MatchSets


class RelevanceOracle:
    """Grades answers for one :class:`EvalQuery`."""

    def __init__(self, query: EvalQuery, match: MatchSets) -> None:
        self.query = query
        self.match = match
        self._targets = frozenset(query.target_nodes)

    def is_relevant(self, tree: JoinedTupleTree) -> bool:
        """Whether the answer connects all intended targets."""
        return self._targets <= tree.nodes

    def keyword_coverage(self, tree: JoinedTupleTree) -> float:
        """Fraction of query keywords the answer covers."""
        keywords = self.match.keywords
        covered = self.match.covered_by(tree.nodes)
        return len(covered & frozenset(keywords)) / len(keywords)

    def grade(self, tree: JoinedTupleTree) -> float:
        """Graded relevance in [0, 1]: relevance x keyword coverage."""
        if not self.is_relevant(tree):
            return 0.0
        return self.keyword_coverage(tree)

    def is_best(self, tree: JoinedTupleTree) -> bool:
        """Whether the answer is one of the user-preferred best answers."""
        return frozenset(tree.nodes) in set(self.query.best_nodesets)

    def grades(self, trees: Sequence[JoinedTupleTree]) -> List[float]:
        """Grades for a ranked list."""
        return [self.grade(tree) for tree in trees]
