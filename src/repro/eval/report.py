"""Plain-text rendering of benchmark tables and series.

The benchmark harness prints the same rows/series the paper's figures
plot; these helpers keep the output aligned and diff-friendly so
EXPERIMENTS.md can quote it verbatim.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence


def format_table(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    title: str = "",
) -> str:
    """Render an aligned ASCII table."""
    rendered: List[List[str]] = [[str(h) for h in headers]]
    for row in rows:
        rendered.append([_cell(value) for value in row])
    widths = [
        max(len(line[col]) for line in rendered)
        for col in range(len(headers))
    ]
    lines = []
    if title:
        lines.append(title)
    header, *body = rendered
    lines.append("  ".join(h.ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in body:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def format_series(
    name: str,
    xs: Sequence[object],
    ys: Sequence[float],
    x_label: str = "x",
    y_label: str = "y",
) -> str:
    """Render one figure series as an aligned two-column listing."""
    rows = [(x, y) for x, y in zip(xs, ys)]
    return format_table((x_label, y_label), rows, title=name)


def _cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.4f}"
    return str(value)
