"""Evaluation: metrics, the relevance oracle, and the two harnesses."""

from .metrics import (
    graded_precision,
    mean,
    mean_reciprocal_rank,
    reciprocal_rank,
)
from .relevance import RelevanceOracle
from .pool import build_pool
from .harness import (
    EffectivenessHarness,
    EffectivenessResult,
    EfficiencyHarness,
    TimingResult,
)
from .report import format_series, format_table
from .stats import BootstrapResult, bootstrap_ci, paired_permutation_test

__all__ = [
    "graded_precision",
    "mean",
    "mean_reciprocal_rank",
    "reciprocal_rank",
    "RelevanceOracle",
    "build_pool",
    "EffectivenessHarness",
    "EffectivenessResult",
    "EfficiencyHarness",
    "TimingResult",
    "format_series",
    "format_table",
    "BootstrapResult",
    "bootstrap_ci",
    "paired_permutation_test",
]
