"""Statistical support for effectiveness comparisons.

The paper reports point estimates over 20-44 queries; at that sample
size the difference between two systems deserves uncertainty estimates.
This module adds the two standard tools used for exactly this setting in
IR evaluation:

* :func:`bootstrap_ci` — percentile bootstrap confidence interval for a
  mean (per-query metric values are resampled with replacement);
* :func:`paired_permutation_test` — sign-flipping permutation test on
  per-query paired differences (the recommended significance test for
  MRR/precision comparisons over the same query set).

Both are deterministic given a seed and depend only on numpy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..exceptions import EvaluationError


@dataclass(frozen=True)
class BootstrapResult:
    """A mean with its bootstrap confidence interval."""

    mean: float
    lower: float
    upper: float
    confidence: float

    def __str__(self) -> str:
        return (
            f"{self.mean:.4f} "
            f"[{self.lower:.4f}, {self.upper:.4f}] "
            f"@{self.confidence:.0%}"
        )


def bootstrap_ci(
    values: Sequence[float],
    confidence: float = 0.95,
    resamples: int = 2000,
    seed: int = 0,
) -> BootstrapResult:
    """Percentile-bootstrap CI of the mean of ``values``.

    Args:
        values: per-query metric values.
        confidence: interval mass (e.g. 0.95).
        resamples: bootstrap resamples.
        seed: RNG seed.
    """
    if not values:
        raise EvaluationError("cannot bootstrap zero values")
    if not 0.0 < confidence < 1.0:
        raise EvaluationError("confidence must be in (0, 1)")
    if resamples < 1:
        raise EvaluationError("resamples must be >= 1")
    data = np.asarray(values, dtype=float)
    rng = np.random.default_rng(seed)
    indices = rng.integers(0, len(data), size=(resamples, len(data)))
    means = data[indices].mean(axis=1)
    alpha = (1.0 - confidence) / 2.0
    lower, upper = np.quantile(means, [alpha, 1.0 - alpha])
    return BootstrapResult(
        float(data.mean()), float(lower), float(upper), confidence
    )


def paired_permutation_test(
    a: Sequence[float],
    b: Sequence[float],
    permutations: int = 5000,
    seed: int = 0,
) -> float:
    """Two-sided p-value that systems ``a`` and ``b`` differ in mean.

    Per-query differences have their signs flipped uniformly at random;
    the p-value is the fraction of permutations whose absolute mean
    difference reaches the observed one.  Exact enumeration is used when
    the query count makes it cheaper than sampling.

    Args:
        a / b: per-query metric values of the two systems, aligned.
        permutations: sampled sign assignments.
        seed: RNG seed.
    """
    if len(a) != len(b):
        raise EvaluationError("paired samples must have equal length")
    if not a:
        raise EvaluationError("cannot test zero pairs")
    diffs = np.asarray(a, dtype=float) - np.asarray(b, dtype=float)
    observed = abs(float(diffs.mean()))
    n = len(diffs)
    if observed == 0.0:
        return 1.0
    if 2 ** n <= permutations:
        # exact: enumerate every sign assignment
        count = 0
        total = 2 ** n
        for mask in range(total):
            signs = np.fromiter(
                ((1.0 if mask >> i & 1 else -1.0) for i in range(n)),
                dtype=float, count=n,
            )
            if abs(float((diffs * signs).mean())) >= observed - 1e-15:
                count += 1
        return count / total
    rng = np.random.default_rng(seed)
    signs = rng.choice((-1.0, 1.0), size=(permutations, n))
    permuted = np.abs((signs * diffs).mean(axis=1))
    # add-one smoothing keeps the p-value away from an impossible 0
    return float((np.sum(permuted >= observed - 1e-15) + 1) / (permutations + 1))
