"""Per-query candidate pooling for fair ranking-function comparison.

The paper compares ranking *functions* ("we implemented SPARK's scoring
function on the database graph, as well as BANKS") rather than retrieval
engines, so the comparison harness follows classic IR pooling: one
scorer-agnostic candidate generator produces the answer pool, and every
ranking function orders the same pool.  The generator is the naive BFS
assembly (it enumerates answers without consulting any scorer), capped to
keep pools tractable.
"""

from __future__ import annotations

import itertools
from typing import List

from ..config import SearchParams
from ..graph.datagraph import DataGraph
from ..model.jtt import JoinedTupleTree
from ..rwmp.scoring import RWMPScorer
from ..search.naive import NaiveSearch
from ..text.matcher import MatchSets


def build_pool(
    graph: DataGraph,
    scorer: RWMPScorer,
    match: MatchSets,
    diameter: int,
    max_pool: int = 200,
    max_paths_per_source: int = 8,
    max_answers_per_root: int = 24,
) -> List[JoinedTupleTree]:
    """Build the scorer-agnostic answer pool for one query.

    Args:
        graph: the data graph.
        scorer: any RWMP scorer for the query (the pool generator never
            calls it; the parameter keeps NaiveSearch's interface whole).
        match: the query's match sets.
        diameter: the answer diameter cap.
        max_pool: pool size cap.
        max_paths_per_source / max_answers_per_root: assembly valves.

    Returns:
        Up to ``max_pool`` distinct answers in the assembly's
        deterministic order.
    """
    search = NaiveSearch(
        graph,
        scorer,
        match,
        SearchParams(k=max(1, max_pool), diameter=diameter),
        max_paths_per_source=max_paths_per_source,
        max_answers_per_root=max_answers_per_root,
    )
    return list(itertools.islice(search.iter_answers(), max_pool))
