"""Exception hierarchy for the CI-Rank reproduction.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch a single base class at API boundaries while the library
itself raises the most specific subclass available.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class SchemaError(ReproError):
    """A schema definition is invalid (duplicate tables, bad references...)."""


class IntegrityError(ReproError):
    """A tuple violates a schema constraint (missing PK, dangling FK...)."""


class GraphError(ReproError):
    """The data graph is malformed or an operation on it is invalid."""


class InvalidTreeError(ReproError):
    """A joined tuple tree is structurally invalid (cycle, disconnected...)."""


class NotReducedError(InvalidTreeError):
    """A tree is connected but not reduced with respect to the query."""


class SearchError(ReproError):
    """A search algorithm was configured or invoked incorrectly."""


class IndexError_(ReproError):
    """An index lookup failed or the index is inconsistent.

    Named with a trailing underscore to avoid shadowing the built-in
    ``IndexError``; exported as ``IndexingError`` from the package root.
    """


IndexingError = IndexError_


class StaleIndexError(IndexError_):
    """A persisted index no longer matches the live graph or parameters.

    Raised by :mod:`repro.storage.index_store` when a manifest's graph
    fingerprint or dampening fingerprint disagrees with the deployment
    asking to load it; callers typically catch this and rebuild.
    """


class DatasetError(ReproError):
    """A synthetic dataset generator received inconsistent parameters."""


class ServingError(ReproError):
    """The serving front end was configured or driven incorrectly."""


class BadRequestError(ServingError):
    """A client request is malformed (unparseable, missing fields...).

    The HTTP front end maps this to a 400 response; the daemon raises it
    before the request enters the dedup/batching pipeline, so rejected
    requests never disturb the serving counters' invariants.
    """


class EvaluationError(ReproError):
    """An evaluation harness was given inconsistent inputs."""
