"""ObjectRank (Balmin, Hristidis, Papakonstantinou, VLDB 2004).

The authority-based alternative the paper positions itself against:
ObjectRank runs a query-specific random walk whose teleport ("base")
set is the keyword-matching nodes, and ranks *individual objects* by
the authority that flows to them.  The CI-Rank paper's point (Section I)
is that this ranks tuples, not connected answers, and "cannot be easily
extended" to score trees.

We implement the real thing — per-keyword authority vectors combined
with AND semantics — plus the naive tree extension (average combined
authority over the tree's nodes) so the ablation bench can show what
the paper claims: the naive extension trails RWMP, because authority
says nothing about how (or whether) the matched tuples connect.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

import numpy as np

from ..config import DEFAULT_TELEPORT
from ..exceptions import EvaluationError
from ..graph.datagraph import DataGraph
from ..importance.pagerank import ImportanceVector, pagerank
from ..model.jtt import JoinedTupleTree
from ..text.matcher import MatchSets


class ObjectRankScorer:
    """Per-query authority scoring in the ObjectRank style.

    Args:
        graph: the data graph.
        match: the query's match sets (supplies the base sets).
        teleport: the restart probability (ObjectRank's ``1 - d``).
        tolerance: power-iteration threshold (per keyword vector).
    """

    def __init__(
        self,
        graph: DataGraph,
        match: MatchSets,
        teleport: float = DEFAULT_TELEPORT,
        tolerance: float = 1e-9,
    ) -> None:
        self.graph = graph
        self.match = match
        self.teleport = teleport
        self._vectors: Dict[str, ImportanceVector] = {}
        for keyword in match.keywords:
            base = match.per_keyword.get(keyword, set())
            if not base:
                continue
            u = np.zeros(graph.node_count)
            for node in base:
                u[node] = 1.0
            self._vectors[keyword] = pagerank(
                graph, teleport=teleport, teleport_vector=u,
                tolerance=tolerance,
            )

    # ---------------------------------------------------------- authority

    def keyword_authority(self, keyword: str, node: int) -> float:
        """Authority of ``node`` w.r.t. one keyword's base set."""
        vector = self._vectors.get(keyword)
        return vector[node] if vector is not None else 0.0

    def node_score(self, node: int) -> float:
        """The global (AND-semantics) ObjectRank: the product of the
        per-keyword authorities — a node scores high only when authority
        flows to it from *every* keyword's base set."""
        if not self._vectors:
            return 0.0
        score = 1.0
        for keyword in self.match.keywords:
            score *= self.keyword_authority(keyword, node)
        return score

    def rank_nodes(self, top: int = 10) -> List[Tuple[int, float]]:
        """ObjectRank's native output: the top authority objects."""
        if top < 1:
            raise EvaluationError("top must be >= 1")
        scored = [
            (node, self.node_score(node)) for node in self.graph.nodes()
        ]
        scored.sort(key=lambda item: (-item[1], item[0]))
        return scored[:top]

    # ------------------------------------------------------ tree extension

    def score(self, tree: JoinedTupleTree) -> float:
        """The naive tree extension: mean combined authority over the
        tree's nodes — the adaptation the CI-Rank paper argues cannot
        capture collective importance (it is blind to the connection
        structure: any node set averages the same regardless of shape)."""
        return sum(self.node_score(v) for v in tree.nodes) / len(tree.nodes)
