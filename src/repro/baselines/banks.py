"""BANKS scoring and backward-expanding search (Bhalotia et al., ICDE 2002).

Scoring, as characterized in Section II-B of the CI-Rank paper: the tree
score combines a *node score* — the average weight of the root and the
leaf nodes only — with an *edge score* ``1 / (1 + sum(e))`` over the
tree's edge weights.  Node weight is BANKS' indegree prestige
(``log2(1 + indegree)``); the combination is the multiplicative form
``edge_score * node_score ** lambda_`` with BANKS' published default
``lambda_ = 0.2``.

The blindness the paper exploits (Fig. 3): intermediate free nodes — the
movie connecting three actors — contribute nothing, so all connecting
movies tie.  ``tests/test_baselines.py`` asserts that tie.

The module also implements BANKS' *backward expanding search* so the
baseline runs end to end: single-source shortest-path iterators grow
backwards from every keyword node; whenever some node has been reached
from at least one node of every keyword group, the union of the shortest
paths forms a result tree rooted there.
"""

from __future__ import annotations

import heapq
import itertools
import math
from typing import Dict, List, Optional, Set, Tuple

from ..config import SearchParams
from ..exceptions import InvalidTreeError, SearchError
from ..graph.datagraph import DataGraph
from ..model.answer import RankedAnswer, RankedList
from ..model.jtt import JoinedTupleTree
from ..text.matcher import MatchSets

DEFAULT_LAMBDA = 0.2


class BanksScorer:
    """BANKS tree scoring for one query.

    Args:
        graph: the data graph (indegree prestige source).
        match: the query's match sets (identifies root/leaf keyword nodes).
        lambda_: node-score exponent.
        edge_weight: weight charged per tree edge in the edge score; BANKS
            derives per-edge weights from schema statistics, which the
            CI-Rank comparison abstracts away — a uniform charge keeps the
            size preference and the free-node blindness intact.
    """

    def __init__(
        self,
        graph: DataGraph,
        match: MatchSets,
        lambda_: float = DEFAULT_LAMBDA,
        edge_weight: float = 1.0,
    ) -> None:
        if edge_weight <= 0:
            raise SearchError("edge_weight must be positive")
        self.graph = graph
        self.match = match
        self.lambda_ = lambda_
        self.edge_weight = edge_weight

    def node_weight(self, node: int) -> float:
        """Indegree prestige ``log2(1 + indegree)``."""
        return math.log2(1.0 + len(self.graph.in_edges(node)))

    def score(self, tree: JoinedTupleTree, root: Optional[int] = None) -> float:
        """BANKS score; ``root`` defaults to the best keyword node.

        Only the root and the (rooted-tree) leaves enter the node score —
        the paper's point of attack: in Fig. 3 the root is the actor
        "Orlando Bloom" and the connecting movie, being an intermediate
        node, contributes nothing.  BANKS emits the same subtree once per
        admissible root and the best-scoring version ranks first, so the
        default root is the keyword node with the highest prestige.
        """
        if root is None:
            root = self._default_root(tree)
        elif root not in tree.nodes:
            raise InvalidTreeError(f"root {root} not in tree")
        if len(tree.nodes) == 1:
            endpoints = {root}
        else:
            endpoints = {
                n for n in tree.nodes if tree.degree(n) == 1 and n != root
            } | {root}
        node_score = sum(self.node_weight(n) for n in endpoints) / len(endpoints)
        edge_score = 1.0 / (1.0 + self.edge_weight * len(tree.edges))
        return edge_score * (max(node_score, 1e-12) ** self.lambda_)

    def _default_root(self, tree: JoinedTupleTree) -> int:
        """The keyword node with the highest prestige (BANKS' best root),
        falling back to the highest-prestige node overall."""
        keyword_nodes = [
            n for n in tree.nodes if self.match.keywords_of.get(n)
        ]
        candidates = keyword_nodes or list(tree.nodes)
        return max(candidates, key=lambda n: (self.node_weight(n), -n))


class BackwardExpandingSearch:
    """BANKS' backward expanding search, bounded by the diameter cap.

    Args:
        graph: the data graph.
        scorer: the BANKS scorer used to rank emitted trees.
        match: the query's match sets.
        params: search parameters (k, diameter).
        max_roots: stop after this many connecting roots have been found
            (0 = unlimited).
    """

    def __init__(
        self,
        graph: DataGraph,
        scorer: BanksScorer,
        match: MatchSets,
        params: Optional[SearchParams] = None,
        max_roots: int = 0,
    ) -> None:
        self.graph = graph
        self.scorer = scorer
        self.match = match
        self.params = params or SearchParams()
        self.max_roots = max_roots

    def run(self) -> List[RankedAnswer]:
        """Execute the search; returns the top-k by BANKS score."""
        radius = (self.params.diameter + 1) // 2
        top_k = RankedList(self.params.k)
        seen: Set[JoinedTupleTree] = set()

        # Backward Dijkstra (uniform costs -> BFS) per keyword group,
        # keeping one best predecessor per reached node.
        reached: Dict[str, Dict[int, Tuple[int, Optional[int]]]] = {}
        counter = itertools.count()
        for keyword in self.match.keywords:
            table: Dict[int, Tuple[int, Optional[int]]] = {}
            frontier: List[Tuple[int, int, int, Optional[int]]] = []
            for origin in sorted(self.match.per_keyword.get(keyword, ())):
                heapq.heappush(frontier, (0, origin, next(counter), None))
            while frontier:
                dist, node, _, pred = heapq.heappop(frontier)
                if node in table:
                    continue
                table[node] = (dist, pred)
                if dist >= radius:
                    continue
                for nbr in sorted(self.graph.neighbors(node)):
                    if nbr not in table:
                        heapq.heappush(
                            frontier, (dist + 1, nbr, next(counter), node)
                        )
            reached[keyword] = table

        roots = [
            node
            for node in sorted(self.graph.nodes())
            if all(node in reached[k] for k in self.match.keywords)
        ]
        if self.max_roots:
            roots = roots[: self.max_roots]
        for root in roots:
            paths = []
            for keyword in self.match.keywords:
                path = [root]
                while True:
                    pred = reached[keyword][path[-1]][1]
                    if pred is None:
                        break
                    path.append(pred)
                paths.append(path)
            try:
                tree = JoinedTupleTree.from_paths(paths)
            except InvalidTreeError:
                continue  # colliding paths formed a cycle
            if tree in seen or tree.diameter > self.params.diameter:
                continue
            seen.add(tree)
            if not (tree.covers(self.match) and tree.is_reduced(self.match)):
                continue
            top_k.offer(RankedAnswer(tree, self.scorer.score(tree, root=root)))
        return top_k.as_list()
