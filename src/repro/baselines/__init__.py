"""Baseline ranking functions the paper compares against (Section VI-B).

The paper evaluates baselines by implementing their *scoring functions*
over the same data graph ("we implemented SPARK's scoring function on the
database graph, as well as BANKS"), which is what these modules provide;
:mod:`repro.baselines.banks` additionally ships a backward-expanding
search so BANKS can be run end to end.
"""

from .discover2 import Discover2Scorer
from .spark import SparkScorer
from .banks import BanksScorer, BackwardExpandingSearch
from .objectrank import ObjectRankScorer

__all__ = [
    "Discover2Scorer",
    "SparkScorer",
    "BanksScorer",
    "BackwardExpandingSearch",
    "ObjectRankScorer",
]
