"""DISCOVER2's TF-IDF scoring function (Hristidis et al., VLDB 2003).

As quoted in Section II-B of the CI-Rank paper:

    score(T, Q) = (sum_v score(v, Q)) / size(T)

    score(v, Q) = sum_{k in v∩Q}
        (1 + ln(1 + ln(tf_k(v)))) /
        ((1 - s) + s * dl_v / avdl_{Rel(v)}) * ln(idf_k)

    idf_k = (N_{Rel(v)} + 1) / df_k(Rel(v))

The function sees only textual statistics of the keyword-matching nodes;
free nodes contribute nothing except through ``size(T)`` — which is
exactly the blindness to node importance the paper's Fig. 2 example
exposes (both TSIMMIS papers' trees tie under this scorer; the ablation
test asserts that tie).
"""

from __future__ import annotations

import math

from ..exceptions import EvaluationError
from ..model.jtt import JoinedTupleTree
from ..text.inverted_index import InvertedIndex
from ..text.matcher import MatchSets

#: The usual pivoted-normalization slope.
DEFAULT_S = 0.2


class Discover2Scorer:
    """Scores trees with the DISCOVER2 function for one query.

    Args:
        index: the inverted index (relation statistics source).
        match: the query's match sets.
        s: the normalization constant ``s``.
    """

    def __init__(
        self,
        index: InvertedIndex,
        match: MatchSets,
        s: float = DEFAULT_S,
    ) -> None:
        if not 0.0 <= s < 1.0:
            raise EvaluationError(f"s must be in [0, 1), got {s}")
        self.index = index
        self.match = match
        self.s = s

    def node_score(self, node: int) -> float:
        """``score(v, Q)``: the node's TF-IDF contribution."""
        keywords = self.match.keywords_of.get(node)
        if not keywords:
            return 0.0
        relation = self.index.relation_of(node)
        stats = self.index.relation_stats(relation)
        dl = self.index.doc_length(node)
        norm = (1.0 - self.s) + self.s * dl / stats.avdl
        total = 0.0
        for keyword in keywords:
            tf = self.index.tf(keyword, node)
            if tf <= 0:
                continue
            df = stats.df.get(keyword, 0)
            if df <= 0:
                continue
            idf = (stats.tuples + 1) / df
            total += (1.0 + math.log(1.0 + math.log(tf))) / norm * math.log(idf)
        return total

    def score(self, tree: JoinedTupleTree) -> float:
        """``score(T, Q)``: summed node scores over tree size."""
        return sum(self.node_score(v) for v in tree.nodes) / tree.size
