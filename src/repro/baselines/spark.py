"""SPARK's scoring function (Luo et al., SIGMOD 2007).

Three factors multiply (Section II-B of the CI-Rank paper):

    score(T, Q) = score_a(T, Q) * score_b(T, Q) * score_c(T, Q)

* ``score_a`` — TF-IDF over the *virtual document* of the whole tree:

      score_a = sum_{k in T∩Q}
          (1 + ln(1 + ln(tf_k(T)))) /
          ((1 - s) + s * dl_T / avdl_{CN*(T)}) * ln(idf_k)

  with ``tf_k(T) = sum_v tf_k(v)`` and CN*-level collection statistics.
  The CI-Rank paper omits CN*'s exact bookkeeping; we approximate the
  joined relation CN*(T) by the set of relations contributing keyword
  nodes: ``N_{CN*}`` is the maximum relation size (a join can't have
  fewer distinct combinations than its largest participating relation
  has tuples, and using the product would only flatten idf differences),
  ``df_k`` sums over those relations, and ``avdl`` sums their average
  lengths (a joined tuple concatenates one tuple per relation).  The
  behaviours the paper relies on — notably the ``dl_T`` length penalty
  that makes SPARK prefer the *shorter-titled* TSIMMIS paper — are
  preserved exactly.

* ``score_b`` — completeness, an Lp-norm switch between AND and OR
  semantics; equal to 1 for trees covering all keywords (all Definition-3
  answers), below 1 when keywords are missing.

* ``score_c`` — size normalization,
  ``(1 + s1 - s1*size(T)) * (1 + s2 - s2*#keyword-nodes)`` with SPARK's
  published defaults ``s1 = 0.15``, ``s2 = 1/6``, floored at a small
  epsilon so oversized trees rank last rather than flipping sign.
"""

from __future__ import annotations

import math
from typing import Set

from ..exceptions import EvaluationError
from ..model.jtt import JoinedTupleTree
from ..text.inverted_index import InvertedIndex
from ..text.matcher import MatchSets

DEFAULT_S = 0.2
DEFAULT_S1 = 0.15
DEFAULT_S2 = 1.0 / 6.0
DEFAULT_P = 2.0
_SCORE_C_FLOOR = 1e-6


class SparkScorer:
    """Scores trees with the SPARK function for one query.

    Args:
        index: the inverted index.
        match: the query's match sets.
        s: pivoted-normalization slope for ``score_a``.
        s1: tree-size normalization slope.
        s2: keyword-node-count normalization slope.
        p: the completeness Lp exponent (larger = closer to AND).
    """

    def __init__(
        self,
        index: InvertedIndex,
        match: MatchSets,
        s: float = DEFAULT_S,
        s1: float = DEFAULT_S1,
        s2: float = DEFAULT_S2,
        p: float = DEFAULT_P,
    ) -> None:
        if not 0.0 <= s < 1.0:
            raise EvaluationError(f"s must be in [0, 1), got {s}")
        if p < 1.0:
            raise EvaluationError(f"p must be >= 1, got {p}")
        self.index = index
        self.match = match
        self.s = s
        self.s1 = s1
        self.s2 = s2
        self.p = p

    # ------------------------------------------------------------- factors

    def _cn_star_relations(self, tree: JoinedTupleTree) -> Set[str]:
        """Relations contributing keyword nodes (our CN* approximation)."""
        relations = {
            self.index.relation_of(v)
            for v in tree.nodes
            if self.match.keywords_of.get(v)
        }
        return relations or {self.index.relation_of(next(iter(tree.nodes)))}

    def score_a(self, tree: JoinedTupleTree) -> float:
        """The TF-IDF factor over the tree's virtual document."""
        relations = self._cn_star_relations(tree)
        n_cn = max(
            self.index.relation_stats(r).tuples for r in relations
        )
        avdl = sum(self.index.relation_stats(r).avdl for r in relations)
        dl_t = sum(self.index.doc_length(v) for v in tree.nodes)
        norm = (1.0 - self.s) + self.s * dl_t / max(avdl, 1e-12)
        total = 0.0
        for keyword in self.match.keywords:
            tf = sum(self.index.tf(keyword, v) for v in tree.nodes)
            if tf <= 0:
                continue
            df = sum(
                self.index.relation_stats(r).df.get(keyword, 0)
                for r in relations
            )
            if df <= 0:
                continue
            idf = (n_cn + 1) / df
            if idf <= 1.0:
                continue  # ln(idf) <= 0 adds nothing under SPARK's model
            total += (1.0 + math.log(1.0 + math.log(tf))) / norm * math.log(idf)
        return total

    def score_b(self, tree: JoinedTupleTree) -> float:
        """The completeness factor (1.0 when all keywords are covered)."""
        keywords = self.match.keywords
        missing = sum(
            1
            for k in keywords
            if k not in self.match.covered_by(tree.nodes)
        )
        if missing == 0:
            return 1.0
        fraction = missing / len(keywords)
        return max(0.0, 1.0 - fraction ** (1.0 / self.p))

    def score_c(self, tree: JoinedTupleTree) -> float:
        """The size normalization factor."""
        keyword_nodes = sum(
            1 for v in tree.nodes if self.match.keywords_of.get(v)
        )
        factor = (1.0 + self.s1 - self.s1 * tree.size) * (
            1.0 + self.s2 - self.s2 * keyword_nodes
        )
        return max(factor, _SCORE_C_FLOOR)

    # --------------------------------------------------------------- score

    def score(self, tree: JoinedTupleTree) -> float:
        """The full SPARK score."""
        return self.score_a(tree) * self.score_b(tree) * self.score_c(tree)
