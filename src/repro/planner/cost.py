"""Plan candidates and the heuristic cost model that seeds them.

A :class:`PlanCandidate` is one concrete configuration over the real
knob space: search engine + shard count, a diameter cap, graph index
kind/horizon, answer-cache capacity, and the serving pool/batching
knobs.  Candidates are *deltas from the running configuration* — the
:func:`reference_candidate` mirrors what the system has now, and the
generator proposes variations the analyzer's features justify.

:func:`estimate_cost` is deliberately crude: an expected
milliseconds-per-request figure whose only jobs are (a) ranking
candidates plausibly so the replay rounds start with the promising
ones, and (b) being *wrong safely* — every recommendation is validated
by replaying the capture (:mod:`repro.planner.plan`), so a broken cost
model costs replay time, never correctness.  The mutation test inverts
its sign to prove exactly that.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..config import SearchParams, ServingParams
from .analyzer import WorkloadFeatures

#: Answer-cache lookup cost (ms) — measured ~50µs, rounded up.
_HIT_MS = 0.1

#: Duplicate fraction above which the answer cache is the main lever.
_CACHE_LEVER_DUP = 0.3

#: Duplicate fraction at or below which cold searches dominate and the
#: sharded engine is worth validating.
_SHARD_LEVER_DUP = 0.6

#: Free-connector ratio above which a distance index is proposed.
_INDEX_LEVER_RATIO = 0.3

#: Minimum graph size before sharding is proposed.  On a small
#: connected graph every shard's halo ball covers nearly the whole
#: graph, so sharding multiplies work instead of dividing it — and the
#: bound-based early termination never fires.
_SHARD_MIN_NODES = 512

_INDEX_CLASS_KIND = {"StarIndex": "star", "PairsIndex": "pairs"}


@dataclass(frozen=True)
class PlanCandidate:
    """One concrete configuration over the planner's knob space."""

    name: str
    engine: str = "arena"
    shards: int = 4
    diameter: Optional[int] = None
    index_kind: Optional[str] = None
    index_horizon: int = 8
    index_workers: int = 1
    answer_cache_size: int = 256
    workers: int = 4
    max_batch_size: int = 8
    max_wait_ms: float = 2.0
    notes: Tuple[str, ...] = ()

    def search_params(self, base: SearchParams) -> SearchParams:
        """``base`` with this candidate's search knobs applied."""
        overrides: Dict[str, Any] = {
            "engine": self.engine,
            "shards": self.shards,
        }
        if self.diameter is not None:
            overrides["diameter"] = self.diameter
        return dataclasses.replace(base, **overrides)

    def serving_params(self, base: ServingParams) -> ServingParams:
        """``base`` with this candidate's serving knobs applied."""
        return dataclasses.replace(
            base,
            workers=self.workers,
            max_batch_size=self.max_batch_size,
            max_wait_ms=self.max_wait_ms,
        )

    def knobs(self) -> Tuple:
        """Structural identity (everything but name/notes) for dedup."""
        return (
            self.engine, self.shards, self.diameter, self.index_kind,
            self.index_horizon, self.index_workers,
            self.answer_cache_size, self.workers, self.max_batch_size,
            self.max_wait_ms,
        )

    def as_dict(self) -> Dict[str, Any]:
        payload = dataclasses.asdict(self)
        payload["notes"] = list(self.notes)
        return payload

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PlanCandidate":
        known = {f.name for f in dataclasses.fields(cls)}
        kwargs = {k: v for k, v in payload.items() if k in known}
        kwargs["notes"] = tuple(kwargs.get("notes") or ())
        return cls(**kwargs)


def reference_candidate(
    system: Any,
    serving: Optional[ServingParams] = None,
) -> PlanCandidate:
    """The candidate mirroring the system's current configuration."""
    params = system.search_params
    serving = serving or ServingParams()
    index = system.graph_index
    index_kind = (
        _INDEX_CLASS_KIND.get(type(index).__name__)
        if index is not None else None
    )
    return PlanCandidate(
        name="reference",
        engine=params.engine,
        shards=params.shards,
        diameter=params.diameter,
        index_kind=index_kind,
        index_horizon=(
            getattr(index, "horizon", 8) if index is not None else 8
        ),
        answer_cache_size=system.answer_cache.stats().maxsize,
        workers=serving.workers,
        max_batch_size=serving.max_batch_size,
        max_wait_ms=serving.max_wait_ms,
        notes=("the running configuration",),
    )


def _next_pow2(n: int) -> int:
    power = 1
    while power < n:
        power <<= 1
    return power


def estimate_cost(
    features: WorkloadFeatures, candidate: PlanCandidate
) -> float:
    """Expected milliseconds per request under ``candidate``.

    Monotone in the intuitive directions: deeper diameters and bigger
    match sets make cold searches costlier; an index discounts
    connector-heavy searches; sharding divides heavy cold searches at a
    fixed coordination overhead; the answer cache converts the
    duplicate fraction into near-free hits **only** while the working
    set fits (an LRU under cyclic access larger than capacity is a
    deterministic 0% hit rate — the thrash cliff below).
    """
    diameter = (
        candidate.diameter if candidate.diameter is not None
        else (features.observed_diameter or 4)
    )
    cold_ms = 2.0 * (1.7 ** diameter) * (
        1.0 + features.mean_match_size / 8.0
    )
    if candidate.index_kind is not None:
        cold_ms *= 1.0 - 0.5 * features.free_connector_ratio
    if candidate.engine == "sharded":
        cold_ms = cold_ms / max(1.0, 0.75 * candidate.shards) + 2.0
    if candidate.answer_cache_size >= features.unique_queries:
        coverage = 1.0
    elif features.unique_queries:
        # Thrash cliff: cyclic re-arrival over a working set larger
        # than the LRU evicts every entry before its reuse.
        coverage = 0.1 * (
            candidate.answer_cache_size / features.unique_queries
        )
    else:
        coverage = 0.0
    hit_rate = features.duplicate_fraction * coverage
    cost = (1.0 - hit_rate) * cold_ms + hit_rate * _HIT_MS
    # A forming batch waits for companions; pure overhead once the mix
    # is hit-dominated.
    cost += candidate.max_wait_ms * hit_rate * 0.5
    return cost


def generate_candidates(
    features: WorkloadFeatures,
    reference: PlanCandidate,
    limit: int = 6,
    cost_model: Any = None,
) -> List[PlanCandidate]:
    """Feature-driven candidate proposals, cheapest-estimated first.

    Each knob's heuristic fires only when the analyzer saw the workload
    shape it serves, so small captures produce small candidate sets.
    The reference is never in the returned list — the search loop
    always measures it separately and it can never be eliminated.
    """
    model = cost_model or estimate_cost
    proposals: List[PlanCandidate] = []

    if (
        features.duplicate_fraction >= _CACHE_LEVER_DUP
        and features.unique_queries > reference.answer_cache_size
    ):
        size = _next_pow2(2 * features.unique_queries)
        proposals.append(dataclasses.replace(
            reference,
            name=f"cache-{size}",
            answer_cache_size=size,
            notes=(
                f"{features.unique_queries} unique classes thrash the "
                f"{reference.answer_cache_size}-entry cache at "
                f"{features.duplicate_fraction:.0%} duplicates",
            ),
        ))

    if (
        features.duplicate_fraction <= _SHARD_LEVER_DUP
        and reference.engine != "sharded"
        and (
            features.graph_nodes == 0
            or features.graph_nodes >= _SHARD_MIN_NODES
        )
    ):
        for shards in (2, 4):
            proposals.append(dataclasses.replace(
                reference,
                name=f"sharded-{shards}",
                engine="sharded",
                shards=shards,
                notes=(
                    "cold searches dominate "
                    f"({1 - features.duplicate_fraction:.0%} of "
                    "arrivals); shard the branch-and-bound",
                ),
            ))

    if (
        features.observed_diameter is not None
        and reference.diameter is not None
        and features.observed_diameter < reference.diameter
    ):
        proposals.append(dataclasses.replace(
            reference,
            name=f"diameter-{features.observed_diameter}",
            diameter=features.observed_diameter,
            notes=(
                f"observed answers top out at diameter "
                f"{features.observed_diameter} < configured "
                f"{reference.diameter}",
            ),
        ))

    if (
        features.free_connector_ratio >= _INDEX_LEVER_RATIO
        and reference.index_kind is None
    ):
        proposals.append(dataclasses.replace(
            reference,
            name="star-index",
            index_kind="star",
            notes=(
                f"{features.free_connector_ratio:.0%} of arrivals need "
                "free connectors; a star index prunes their expansion",
            ),
        ))

    if (
        features.duplicate_fraction >= _SHARD_LEVER_DUP
        and reference.max_wait_ms > 0
    ):
        proposals.append(dataclasses.replace(
            reference,
            name="no-batch-wait",
            max_wait_ms=0.0,
            notes=(
                "hit-dominated mix; batching wait only adds latency",
            ),
        ))

    seen = {reference.knobs()}
    unique: List[PlanCandidate] = []
    for candidate in proposals:
        if candidate.knobs() in seen:
            continue
        seen.add(candidate.knobs())
        unique.append(candidate)
    unique.sort(key=lambda c: model(features, c))
    return unique[: max(0, limit)]
