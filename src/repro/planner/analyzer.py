"""Workload analysis: fold a capture into planner-ready features.

The planner's input is the capture → :class:`~repro.obs.workload.Workload`
loop shipped by the observability layer.  This module reduces a workload
(or, coarsely, a live ``/stats`` payload) to the handful of numbers the
cost model and candidate generator consume:

* **repetition** — duplicate fraction, hot-class share, unique class
  count: decides whether the answer cache is the lever and how big it
  must be to stop thrashing;
* **query shape** — keyword counts, keyword-frequency skew/entropy, and
  the **free-connector ratio**: the arrival-weighted fraction of query
  classes whose keywords never co-occur in a single node, so every
  answer needs free connector nodes.  This is the paper's AOL-mix vs
  synthetic-mix distinction, and it is what a distance index (pairs or
  star) prunes for;
* **answer shape** — observed answer-tree diameters and match-set
  sizes, probed through the live system: decides diameter caps and
  whether cold searches are heavy enough to shard;
* **SLA** — deadline distribution of the recorded requests.

Probing is bounded (``probe`` top classes for diameters, a few hundred
classes for match sets), so analysis stays cheap next to a single
replay round.
"""

from __future__ import annotations

import math
from dataclasses import asdict, dataclass, field
from typing import Any, Dict, List, Optional

from ..exceptions import ReproError
from ..obs.workload import Workload

#: Match-set probing cap: beyond this many classes the mean/max match
#: sizes are estimated from a prefix (classes are visited hottest-first,
#: so the estimate covers the arrivals that matter).
MATCH_PROBE_LIMIT = 512


@dataclass
class WorkloadFeatures:
    """The analyzer's summary of one workload (JSON-friendly)."""

    source: str = "capture"
    total_arrivals: int = 0
    unique_queries: int = 0
    duplicate_fraction: float = 0.0
    hot_share: float = 0.0
    period_seconds: float = 0.0
    arrival_qps: float = 0.0
    mean_keywords: float = 0.0
    multi_keyword_fraction: float = 0.0
    keyword_skew: float = 0.0
    keyword_entropy: float = 0.0
    free_connector_ratio: float = 0.0
    graph_nodes: int = 0
    probed_queries: int = 0
    observed_diameter: Optional[int] = None
    mean_match_size: float = 0.0
    max_match_size: int = 0
    deadline_fraction: float = 0.0
    deadline_p50_ms: float = 0.0
    deadline_p95_ms: float = 0.0
    engines: Dict[str, int] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        return asdict(self)

    def render(self) -> str:
        """Human-readable summary (``cirank stats --plan`` / ``plan``)."""
        lines = [
            f"workload features ({self.source}):",
            f"  arrivals:            {self.total_arrivals}"
            f" ({self.unique_queries} unique classes)",
            f"  duplicate fraction:  {self.duplicate_fraction:.2f}"
            f" (hot share {self.hot_share:.2f})",
            f"  period:              {self.period_seconds:.1f}s"
            f" ({self.arrival_qps:.1f} qps)",
            f"  keywords/query:      {self.mean_keywords:.2f}"
            f" ({self.multi_keyword_fraction:.0%} multi-keyword)",
            f"  keyword skew:        {self.keyword_skew:.2f}"
            f" (entropy {self.keyword_entropy:.2f})",
            f"  free-connector:      {self.free_connector_ratio:.2f}"
            f" over {self.probed_queries} probed classes",
            f"  graph nodes:         "
            + (str(self.graph_nodes) if self.graph_nodes else "unprobed"),
            f"  match size:          mean {self.mean_match_size:.1f}"
            f" max {self.max_match_size}",
            "  observed diameter:   "
            + (
                str(self.observed_diameter)
                if self.observed_diameter is not None else "unprobed"
            ),
            f"  deadlines:           {self.deadline_fraction:.0%} of"
            f" arrivals (p50 {self.deadline_p50_ms:.0f}ms"
            f" p95 {self.deadline_p95_ms:.0f}ms)",
        ]
        if self.engines:
            mix = " ".join(
                f"{name or 'default'}={count}"
                for name, count in sorted(self.engines.items())
            )
            lines.append(f"  engines:             {mix}")
        return "\n".join(lines)


def _tokens(query: str, system: Optional[Any]) -> List[str]:
    """Analyzed keywords of one query (analyzer when available)."""
    if system is not None:
        try:
            return list(system.index.analyzer.analyze_query(query))
        except Exception:
            return []
    return [t for t in query.lower().split() if t]


def analyze_workload(
    workload: Workload,
    system: Optional[Any] = None,
    probe: int = 8,
) -> WorkloadFeatures:
    """Fold a workload (plus an optional live system) into features.

    Without ``system`` the text statistics fall back to whitespace
    tokenization and the free-connector ratio approximates to the
    multi-keyword fraction (a keyword pair in one node is rare enough
    that multi-keyword AND queries usually need connectors).  With a
    system, the matcher decides per class whether any single node covers
    every keyword, and the top ``probe`` classes are searched to observe
    real answer diameters.
    """
    from ..serving.loadgen import percentile

    features = WorkloadFeatures()
    entries = sorted(
        workload.entries, key=lambda e: (-e.arrival_count, e.query)
    )
    total = workload.total_arrivals
    features.total_arrivals = total
    features.unique_queries = len(entries)
    features.duplicate_fraction = workload.duplicate_fraction()
    features.period_seconds = workload.period_seconds
    if total == 0:
        return features
    features.hot_share = entries[0].arrival_count / total
    if workload.period_seconds > 0:
        features.arrival_qps = total / workload.period_seconds

    # ---- text shape (arrival-weighted over query classes)
    keyword_counts: Dict[str, int] = {}
    keyword_arrivals = 0
    multi_arrivals = 0
    token_lists: Dict[str, List[str]] = {}
    for entry in entries:
        tokens = _tokens(entry.query, system)
        token_lists[entry.query] = tokens
        if not tokens:
            continue
        keyword_arrivals += entry.arrival_count
        if len(tokens) > 1:
            multi_arrivals += entry.arrival_count
        for token in tokens:
            keyword_counts[token] = (
                keyword_counts.get(token, 0) + entry.arrival_count
            )
    if keyword_arrivals:
        features.mean_keywords = (
            sum(
                len(token_lists[e.query]) * e.arrival_count
                for e in entries
            ) / keyword_arrivals
        )
        features.multi_keyword_fraction = multi_arrivals / keyword_arrivals
    occurrences = sum(keyword_counts.values())
    if occurrences:
        features.keyword_skew = max(keyword_counts.values()) / occurrences
        if len(keyword_counts) > 1:
            entropy = -sum(
                (c / occurrences) * math.log(c / occurrences)
                for c in keyword_counts.values()
            )
            features.keyword_entropy = entropy / math.log(len(keyword_counts))

    # ---- connector / match shape (needs the live matcher)
    if system is not None:
        features.graph_nodes = system.graph.node_count
        probed = 0
        connector_arrivals = 0
        weighted_arrivals = 0
        match_sizes: List[int] = []
        for entry in entries[:MATCH_PROBE_LIMIT]:
            try:
                match = system._match_for(entry.query)
            except ReproError:
                continue
            probed += 1
            match_sizes.append(len(match.all_nodes))
            weighted_arrivals += entry.arrival_count
            if len(match.keywords) > 1 and not any(
                len(kws) == len(match.keywords)
                for kws in match.keywords_of.values()
            ):
                # No single node covers the whole query: every answer
                # needs free connector nodes (the AOL-mix shape).
                connector_arrivals += entry.arrival_count
        features.probed_queries = probed
        if weighted_arrivals:
            features.free_connector_ratio = (
                connector_arrivals / weighted_arrivals
            )
        if match_sizes:
            features.mean_match_size = sum(match_sizes) / len(match_sizes)
            features.max_match_size = max(match_sizes)
        diameters: List[int] = []
        for entry in entries[: max(0, probe)]:
            try:
                answers = system.search(
                    entry.query, k=entry.k, diameter=entry.diameter,
                )
            except ReproError:
                continue
            diameters.extend(a.tree.diameter for a in answers)
        if diameters:
            features.observed_diameter = max(diameters)
    else:
        features.free_connector_ratio = features.multi_keyword_fraction

    # ---- SLA + engine mix
    deadline_arrivals = [
        e.deadline_ms for e in entries for _ in range(e.arrival_count)
        if e.deadline_ms > 0
    ]
    features.deadline_fraction = len(deadline_arrivals) / total
    if deadline_arrivals:
        features.deadline_p50_ms = percentile(deadline_arrivals, 50)
        features.deadline_p95_ms = percentile(deadline_arrivals, 95)
    engines: Dict[str, int] = {}
    for entry in entries:
        name = entry.engine or "default"
        engines[name] = engines.get(name, 0) + entry.arrival_count
    features.engines = engines
    return features


def features_from_stats(payload: Dict[str, Any]) -> WorkloadFeatures:
    """Coarse features from a live ``/stats`` document.

    The counters cannot recover per-class structure (no query texts
    cross the stats surface), so only the repetition and SLA features
    are populated; ``cirank plan --from-stats`` uses this for
    heuristic-only recommendations and says so.
    """
    features = WorkloadFeatures(source="stats")
    received = int(payload.get("received", 0))
    executed = int(payload.get("executed", 0))
    coalesced = int(payload.get("coalesced", 0))
    cache_served = int(payload.get("cache_served", 0))
    features.total_arrivals = received
    if received:
        features.duplicate_fraction = min(
            1.0, (coalesced + cache_served) / received
        )
    if executed:
        features.deadline_fraction = (
            int(payload.get("deadline_expired", 0)) / executed
        )
    cache = payload.get("answer_cache") or {}
    features.unique_queries = int(cache.get("size", 0))
    return features
