"""``repro.planner`` — workload-driven, replay-validated self-tuning.

The planner closes the loop the observability layer opened: capture a
workload (:mod:`repro.obs.workload`), fold it into features
(:mod:`~repro.planner.analyzer`), propose candidate configurations over
the real knob space (:mod:`~repro.planner.cost`), and **prove** the
recommendation by replaying the capture under each candidate with a
tie-class parity gate against the reference configuration
(:mod:`~repro.planner.plan`).

Entry points: :func:`plan_capture` (the full analyze → propose → replay
→ gate loop), :func:`plan_from_features` (heuristic-only, from a live
``/stats`` scrape), and :meth:`repro.system.CIRankSystem.apply_plan` to
adopt a report.  See ``docs/PLANNER.md``.
"""

from .analyzer import (
    WorkloadFeatures,
    analyze_workload,
    features_from_stats,
)
from .cost import (
    PlanCandidate,
    estimate_cost,
    generate_candidates,
    reference_candidate,
)
from .plan import (
    CandidateResult,
    PlanReport,
    check_parity,
    plan_capture,
    plan_from_features,
)

__all__ = [
    "WorkloadFeatures",
    "analyze_workload",
    "features_from_stats",
    "PlanCandidate",
    "estimate_cost",
    "generate_candidates",
    "reference_candidate",
    "CandidateResult",
    "PlanReport",
    "check_parity",
    "plan_capture",
    "plan_from_features",
]
