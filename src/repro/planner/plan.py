"""The replay-validated planner loop: analyze → propose → prove.

:func:`plan_capture` is the planner's engine.  Given a live
:class:`~repro.system.CIRankSystem` and the raw records of a PR-8
capture, it

1. folds the capture into :class:`~repro.planner.analyzer.WorkloadFeatures`;
2. proposes :class:`~repro.planner.cost.PlanCandidate` configurations
   seeded by the per-knob heuristics;
3. **measures** every candidate by replaying the capture against the
   warm system under that configuration, successively halving the
   candidate set over growing capture *prefixes* (prefixes, not
   strides: real captures are cyclic, and stride-sampling one shrinks
   the working set — which is exactly the cache-thrash signal a
   cache-size candidate exists to exploit);
4. **gates** the winner on tie-class parity: for every unique query
   class, the candidate configuration must return answers tie-class
   identical to the reference configuration's.  A faster-but-wrong
   candidate (say, a diameter cap below the workload's real answer
   diameter) is marked ``parity_ok=False`` and can never be chosen.

The reference configuration is measured in every round and is never
eliminated, so the final report always contains the baseline the
speedup claim is relative to, and falling back to it is always safe.

Two transports measure a leg:

* ``"direct"`` — worker threads drive :meth:`CIRankSystem.search`
  straight (no sockets); fast and deterministic, the default for tests
  and offline planning;
* ``"http"`` — an :class:`~repro.serving.loadgen.InProcessServer` is
  started per leg and the capture replays over real sockets through
  :func:`repro.obs.replay.replay`, so batching/dedup/worker knobs
  participate in the measurement.
"""

from __future__ import annotations

import dataclasses
import json
import threading
import time
from dataclasses import dataclass, field
from queue import Empty, SimpleQueue
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..config import ServingParams
from ..exceptions import ReproError
from ..obs.replay import tie_classes_direct
from ..obs.workload import Workload
from .analyzer import WorkloadFeatures, analyze_workload
from .cost import (
    PlanCandidate,
    estimate_cost,
    generate_candidates,
    reference_candidate,
)

#: Replay-rate multiplier for the http transport: effectively "as fast
#: as the server absorbs", so a leg measures capacity, not idle time.
HTTP_REPLAY_RATE = 1000.0

#: Parity divergences recorded per candidate before truncating.
_MAX_PARITY_FAILURES = 5

#: Candidate leg guardrail: a request is cut off (and its candidate
#: eliminated) once it exceeds this multiple of the reference leg's
#: p99 latency.  A configuration that slow on any request can never
#: win, and without the guard a pathological proposal (say, sharding a
#: graph too small to partition) would hold the whole plan hostage.
_LEG_DEADLINE_FACTOR = 20.0

#: Floor for the candidate-leg request deadline (ms), so a very fast
#: reference does not cut candidates off on scheduler noise.
_LEG_DEADLINE_FLOOR_MS = 250.0


@dataclass
class CandidateResult:
    """One candidate's estimated cost, measurements, and parity verdict."""

    candidate: PlanCandidate
    estimated_cost: float
    rounds: List[Dict[str, Any]] = field(default_factory=list)
    throughput_qps: float = 0.0
    p50_ms: float = 0.0
    p99_ms: float = 0.0
    errors: int = 0
    parity_ok: Optional[bool] = None
    parity_failures: List[str] = field(default_factory=list)
    eliminated_round: Optional[int] = None

    def as_dict(self) -> Dict[str, Any]:
        return {
            "candidate": self.candidate.as_dict(),
            "estimated_cost": self.estimated_cost,
            "rounds": list(self.rounds),
            "throughput_qps": self.throughput_qps,
            "p50_ms": self.p50_ms,
            "p99_ms": self.p99_ms,
            "errors": self.errors,
            "parity_ok": self.parity_ok,
            "parity_failures": list(self.parity_failures),
            "eliminated_round": self.eliminated_round,
        }

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "CandidateResult":
        return cls(
            candidate=PlanCandidate.from_dict(payload["candidate"]),
            estimated_cost=payload.get("estimated_cost", 0.0),
            rounds=list(payload.get("rounds", [])),
            throughput_qps=payload.get("throughput_qps", 0.0),
            p50_ms=payload.get("p50_ms", 0.0),
            p99_ms=payload.get("p99_ms", 0.0),
            errors=payload.get("errors", 0),
            parity_ok=payload.get("parity_ok"),
            parity_failures=list(payload.get("parity_failures", [])),
            eliminated_round=payload.get("eliminated_round"),
        )


@dataclass
class PlanReport:
    """The planner's full output: features, scores, and the choice."""

    features: WorkloadFeatures
    reference: CandidateResult
    candidates: List[CandidateResult]
    chosen: str
    validated: bool
    speedup: float
    why: List[str]
    transport: str
    budget: int
    rounds: int

    @property
    def chosen_candidate(self) -> PlanCandidate:
        if self.chosen == self.reference.candidate.name:
            return self.reference.candidate
        for result in self.candidates:
            if result.candidate.name == self.chosen:
                return result.candidate
        raise ReproError(f"chosen candidate {self.chosen!r} not in report")

    def as_dict(self) -> Dict[str, Any]:
        return {
            "features": self.features.as_dict(),
            "reference": self.reference.as_dict(),
            "candidates": [r.as_dict() for r in self.candidates],
            "chosen": self.chosen,
            "chosen_config": self.chosen_candidate.as_dict(),
            "validated": self.validated,
            "speedup": self.speedup,
            "why": list(self.why),
            "transport": self.transport,
            "budget": self.budget,
            "rounds": self.rounds,
        }

    def to_json(self) -> str:
        return json.dumps(self.as_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_dict(cls, payload: Dict[str, Any]) -> "PlanReport":
        features = WorkloadFeatures(**payload["features"])
        return cls(
            features=features,
            reference=CandidateResult.from_dict(payload["reference"]),
            candidates=[
                CandidateResult.from_dict(c)
                for c in payload.get("candidates", [])
            ],
            chosen=payload["chosen"],
            validated=payload.get("validated", False),
            speedup=payload.get("speedup", 1.0),
            why=list(payload.get("why", [])),
            transport=payload.get("transport", "direct"),
            budget=payload.get("budget", 0),
            rounds=payload.get("rounds", 0),
        )

    def render(self) -> str:
        """Human-readable plan summary (the CLI's default output)."""
        lines = [self.features.render(), ""]
        lines.append(
            f"measured over {self.budget} replayed requests "
            f"({self.transport} transport, {self.rounds} round(s)):"
        )
        rows = [self.reference] + self.candidates
        for result in rows:
            parity = {True: "parity ok", False: "PARITY FAIL", None: "-"}[
                result.parity_ok
            ]
            status = (
                f"eliminated r{result.eliminated_round}"
                if result.eliminated_round is not None else parity
            )
            lines.append(
                f"  {result.candidate.name:<16} "
                f"{result.throughput_qps:8.1f} qps  "
                f"p99 {result.p99_ms:7.1f}ms  "
                f"est {result.estimated_cost:6.2f}ms  {status}"
            )
        lines.append("")
        lines.append(
            f"chosen: {self.chosen} "
            f"({self.speedup:.2f}x vs reference"
            + (", replay-validated)" if self.validated else ", heuristic)")
        )
        for reason in self.why:
            lines.append(f"  - {reason}")
        return "\n".join(lines)


class _ConfigApplier:
    """Apply candidates to one warm system, restore on exit.

    Indexes are memoized per (kind, horizon) so a candidate set with an
    index proposal builds it once, not once per round; answer caches
    are memoized per capacity so re-applying the reference restores the
    original object (its cumulative counters included).
    """

    def __init__(self, system: Any) -> None:
        self.system = system
        self._base_params = system.search_params
        self._base_cache = system.answer_cache
        self._base_index = system.graph_index
        self._caches = {system.answer_cache.stats().maxsize: system.answer_cache}
        self._indexes: Dict[Tuple[str, Optional[int]], Any] = {}
        if system.graph_index is not None:
            index = system.graph_index
            kind = {"StarIndex": "star", "PairsIndex": "pairs"}.get(
                type(index).__name__
            )
            if kind is not None:
                self._indexes[(kind, getattr(index, "horizon", None))] = index

    def apply(self, candidate: PlanCandidate) -> None:
        from ..storage.answer_cache import AnswerCache

        system = self.system
        system.search_params = candidate.search_params(self._base_params)
        size = candidate.answer_cache_size
        cache = self._caches.get(size)
        if cache is None:
            cache = AnswerCache(size)
            self._caches[size] = cache
        system._answer_cache = cache
        if candidate.index_kind is None:
            system.graph_index = None
            return
        key = (candidate.index_kind, candidate.index_horizon)
        index = self._indexes.get(key)
        if index is None:
            builder = (
                system.build_star_index
                if candidate.index_kind == "star"
                else system.build_pairs_index
            )
            index = builder(
                horizon=candidate.index_horizon,
                workers=candidate.index_workers,
            )
            self._indexes[key] = index
        system.graph_index = index

    def restore(self) -> None:
        self.system.search_params = self._base_params
        self.system._answer_cache = self._base_cache
        self.system.graph_index = self._base_index


def _measure_direct(
    system: Any,
    prefix: Sequence[Dict[str, Any]],
    concurrency: int,
    deadline_ms: Optional[float] = None,
) -> Dict[str, Any]:
    """Drive ``prefix`` through the system from worker threads.

    Every request runs through
    :func:`~repro.serving.deadline.run_with_deadline` — with no budget
    for the reference leg, with the leg guardrail for candidate legs —
    so all legs pay the identical anytime-generator overhead and a
    pathological candidate is cut off at the deadline instead of
    stalling the plan.  The first deadline hit drains the work queue:
    the leg is already disqualified, finishing it would only burn time.
    """
    from ..serving.deadline import run_with_deadline
    from ..serving.loadgen import percentile

    work: SimpleQueue = SimpleQueue()
    for record in prefix:
        work.put(record)
    latencies: List[float] = []
    errors = [0]
    timeouts = [0]
    lock = threading.Lock()

    def drain() -> None:
        while True:
            try:
                work.get_nowait()
            except Empty:
                return

    def worker() -> None:
        while True:
            try:
                record = work.get_nowait()
            except Empty:
                return
            kwargs: Dict[str, Any] = {}
            if record.get("k") is not None:
                kwargs["k"] = int(record["k"])
            if record.get("diameter") is not None:
                kwargs["diameter"] = int(record["diameter"])
            if record.get("engine"):
                kwargs["engine"] = record["engine"]
            t0 = time.perf_counter()
            failed = timed_out = False
            try:
                outcome = run_with_deadline(
                    system,
                    record.get("query", ""),
                    deadline_ms=deadline_ms or 0.0,
                    **kwargs,
                )
                timed_out = outcome.deadline_hit
            except ReproError:
                failed = True
            elapsed_ms = (time.perf_counter() - t0) * 1000.0
            with lock:
                if timed_out:
                    timeouts[0] += 1
                elif failed:
                    errors[0] += 1
                else:
                    latencies.append(elapsed_ms)
            if timed_out:
                drain()
                return

    start = time.perf_counter()
    threads = [
        threading.Thread(target=worker, name=f"plan-{i}", daemon=True)
        for i in range(max(1, concurrency))
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    return {
        "requests": len(prefix),
        "elapsed_seconds": elapsed,
        "throughput_qps": len(latencies) / elapsed if elapsed > 0 else 0.0,
        "p50_ms": percentile(latencies, 50),
        "p99_ms": percentile(latencies, 99),
        "errors": errors[0],
        "timeouts": timeouts[0],
    }


def _measure_http(
    system: Any,
    prefix: Sequence[Dict[str, Any]],
    serving: ServingParams,
    candidate: PlanCandidate,
    concurrency: int,
    deadline_ms: Optional[float] = None,
) -> Dict[str, Any]:
    """Replay ``prefix`` through a fresh in-process server.

    The leg guardrail maps to the replay client's socket timeout:
    a request slower than the deadline surfaces as a timeout error,
    which the search loop treats as a leg timeout.
    """
    from ..obs.replay import replay
    from ..serving.loadgen import InProcessServer

    params = dataclasses.replace(
        candidate.serving_params(serving), port=0, capture_path="",
    )
    timeout = 120.0 if deadline_ms is None else max(5.0, deadline_ms / 250.0)
    with InProcessServer(system, params) as server:
        report = replay(
            server.host,
            server.port,
            list(prefix),
            rate=HTTP_REPLAY_RATE,
            concurrency=max(1, concurrency),
            honor_deadlines=False,
            timeout=timeout,
        )
    latency = report.latency_ms
    return {
        "requests": report.total_requests,
        "elapsed_seconds": report.elapsed_seconds,
        "throughput_qps": report.throughput_qps,
        "p50_ms": latency.get("p50", float("nan")),
        "p99_ms": latency.get("p99", float("nan")),
        "errors": report.errors,
        "timeouts": sum(
            count
            for name, count in report.error_classes.items()
            if "timeout" in name.lower()
        ),
    }


def _measure(
    system: Any,
    applier: _ConfigApplier,
    candidate: PlanCandidate,
    prefix: Sequence[Dict[str, Any]],
    transport: str,
    serving: ServingParams,
    concurrency: int,
    deadline_ms: Optional[float] = None,
) -> Dict[str, Any]:
    applier.apply(candidate)
    # Every leg starts answer-cache cold: hits must be earned from the
    # replayed prefix itself, or a candidate measured second would
    # free-ride on its predecessor's warm entries.
    system.answer_cache.clear()
    if transport == "http":
        return _measure_http(
            system, prefix, serving, candidate, concurrency, deadline_ms,
        )
    return _measure_direct(system, prefix, concurrency, deadline_ms)


def _leg_deadline_ms(reference_measurement: Dict[str, Any]) -> Optional[float]:
    """Candidate-leg request deadline from the reference leg's p99."""
    p99 = reference_measurement.get("p99_ms", float("nan"))
    if p99 != p99 or p99 <= 0:  # nan (all-error leg) or degenerate
        return None
    return max(_LEG_DEADLINE_FLOOR_MS, _LEG_DEADLINE_FACTOR * p99)


def _class_key(entry: Any) -> Tuple:
    return (entry.query, entry.k, entry.diameter, entry.engine or "")


def _class_answers(system: Any, entry: Any):
    kwargs: Dict[str, Any] = {"k": entry.k}
    if entry.diameter is not None:
        kwargs["diameter"] = entry.diameter
    if entry.engine:
        kwargs["engine"] = entry.engine
    return system.search(entry.query, **kwargs)


def check_parity(
    system: Any,
    applier: _ConfigApplier,
    candidate: PlanCandidate,
    workload: Workload,
    expected: Dict[Tuple, List],
) -> Tuple[bool, List[str]]:
    """Tie-class parity of ``candidate`` vs the reference expectations.

    Every unique query class is searched under the candidate
    configuration and its tie classes (score-grouped answer-tree sets,
    the repo's standard ranked-result equality) must equal the
    reference's.  Returns ``(ok, divergence descriptions)``.
    """
    applier.apply(candidate)
    system.answer_cache.clear()
    failures: List[str] = []
    for entry in workload.entries:
        key = _class_key(entry)
        if key not in expected:
            continue
        try:
            answers = _class_answers(system, entry)
        except ReproError as exc:
            failures.append(f"{entry.query!r}: {type(exc).__name__}")
            continue
        if tie_classes_direct(answers) != expected[key]:
            failures.append(
                f"{entry.query!r}: tie classes diverge from reference"
            )
        if len(failures) > _MAX_PARITY_FAILURES:
            break
    return (not failures, failures[:_MAX_PARITY_FAILURES])


def plan_capture(
    system: Any,
    records: Sequence[Dict[str, Any]],
    *,
    serving: Optional[ServingParams] = None,
    max_candidates: int = 6,
    rounds: int = 2,
    budget: Optional[int] = None,
    transport: str = "direct",
    concurrency: int = 4,
    probe: int = 4,
    tracer: Optional[Any] = None,
    cost_model: Optional[Any] = None,
    candidates: Optional[Sequence[PlanCandidate]] = None,
) -> PlanReport:
    """Analyze a capture, score candidate configs by replay, recommend.

    Args:
        system: the warm deployment to measure against (its
            configuration is restored on return).
        records: raw capture records (``read_query_log`` output).
        serving: base serving knobs for the http transport (and the
            reference serving configuration the candidates are deltas
            from).
        max_candidates: cap on generated candidates (reference excluded).
        rounds: successive-halving rounds; round ``i`` replays a
            ``budget / 2**(rounds-1-i)`` prefix and keeps the top half.
        budget: replayed-request ceiling (default: the whole capture).
        transport: ``"direct"`` (threaded in-process search) or
            ``"http"`` (in-process server + socket replay).
        concurrency: client/worker threads per measurement leg.
        probe: top query classes searched by the analyzer for observed
            diameters.
        tracer: optional :class:`repro.obs.trace.Tracer`; a ``plan``
            root span with per-phase children records where the
            planning time went.
        cost_model: override for :func:`~repro.planner.cost.estimate_cost`
            (the mutation test injects an inverted one).
        candidates: explicit candidate list, bypassing the generator.

    Returns:
        A :class:`PlanReport`; ``report.chosen_candidate`` is safe to
        pass to :meth:`CIRankSystem.apply_plan` — it is either
        replay-validated parity-clean or the reference itself.
    """
    if transport not in ("direct", "http"):
        raise ReproError(f"unknown transport {transport!r}")
    if rounds < 1:
        raise ReproError(f"rounds must be >= 1, got {rounds}")
    ordered = sorted(records, key=lambda r: float(r.get("ts", 0.0)))
    if not ordered:
        raise ReproError("nothing to plan from: the capture is empty")
    total_budget = min(len(ordered), budget or len(ordered))
    serving = serving or ServingParams(port=0)
    model = cost_model or estimate_cost
    span = tracer.start_span("plan") if tracer is not None else None

    try:
        analyze_span = span.child("analyze") if span is not None else None
        workload = Workload.from_records(ordered[:total_budget])
        features = analyze_workload(workload, system=system, probe=probe)
        if analyze_span is not None:
            analyze_span.set_attributes({
                "unique_queries": features.unique_queries,
                "duplicate_fraction": features.duplicate_fraction,
                "free_connector_ratio": features.free_connector_ratio,
            })
            analyze_span.finish()

        reference = reference_candidate(system, serving)
        if candidates is None:
            pool = generate_candidates(
                features, reference,
                limit=max_candidates, cost_model=model,
            )
        else:
            pool = list(candidates)[: max(0, max_candidates)]
        ref_result = CandidateResult(
            candidate=reference,
            estimated_cost=model(features, reference),
        )
        results = [
            CandidateResult(candidate=c, estimated_cost=model(features, c))
            for c in pool
        ]

        applier = _ConfigApplier(system)
        why: List[str] = []
        try:
            # ---- successive halving over capture prefixes
            def fold(result: CandidateResult, m: Dict[str, Any], n: int):
                m["round"] = n
                result.rounds.append(m)
                result.throughput_qps = m["throughput_qps"]
                result.p50_ms = m["p50_ms"]
                result.p99_ms = m["p99_ms"]
                result.errors = m["errors"]

            survivors = list(results)
            for round_no in range(rounds):
                shift = rounds - 1 - round_no
                size = max(1, total_budget >> shift)
                prefix = ordered[:size]
                round_span = (
                    span.child(f"round-{round_no}")
                    if span is not None else None
                )
                # Reference first: its p99 sets the guardrail deadline
                # for every candidate leg in this round.
                ref_measurement = _measure(
                    system, applier, ref_result.candidate, prefix,
                    transport, serving, concurrency,
                )
                fold(ref_result, ref_measurement, round_no)
                leg_deadline = _leg_deadline_ms(ref_measurement)
                still: List[CandidateResult] = []
                for result in survivors:
                    measurement = _measure(
                        system, applier, result.candidate, prefix,
                        transport, serving, concurrency, leg_deadline,
                    )
                    fold(result, measurement, round_no)
                    if measurement.get("timeouts"):
                        result.eliminated_round = round_no
                        why.append(
                            f"{result.candidate.name}: leg timed out "
                            f"(a request exceeded "
                            f"{leg_deadline or 0.0:.0f}ms = "
                            f"{_LEG_DEADLINE_FACTOR:.0f}x the reference "
                            f"p99); eliminated"
                        )
                        continue
                    still.append(result)
                survivors = still
                if round_span is not None:
                    round_span.set_attributes({
                        "requests": size,
                        "survivors": len(survivors),
                    })
                    round_span.finish()
                if round_no < rounds - 1 and len(survivors) > 1:
                    survivors.sort(
                        key=lambda r: -r.throughput_qps
                    )
                    keep = (len(survivors) + 1) // 2
                    for result in survivors[keep:]:
                        result.eliminated_round = round_no
                    survivors = survivors[:keep]

            # ---- reference expectations for the parity gate
            parity_span = span.child("parity") if span is not None else None
            applier.apply(reference)
            system.answer_cache.clear()
            expected: Dict[Tuple, List] = {}
            for entry in workload.entries:
                try:
                    expected[_class_key(entry)] = tie_classes_direct(
                        _class_answers(system, entry)
                    )
                except ReproError:
                    continue
            ref_result.parity_ok = True

            # ---- choose: fastest survivor that passes the gate and
            #      actually beats the reference
            survivors.sort(key=lambda r: -r.throughput_qps)
            chosen = ref_result
            for result in survivors:
                ok, failures = check_parity(
                    system, applier, result.candidate, workload, expected,
                )
                result.parity_ok = ok
                result.parity_failures = failures
                if not ok:
                    why.append(
                        f"{result.candidate.name}: rejected by the "
                        f"replay gate (tie-class divergence)"
                    )
                    continue
                if result.throughput_qps > ref_result.throughput_qps:
                    chosen = result
                    break
                why.append(
                    f"{result.candidate.name}: parity ok but no "
                    f"measured win "
                    f"({result.throughput_qps:.1f} vs "
                    f"{ref_result.throughput_qps:.1f} qps)"
                )
            if parity_span is not None:
                parity_span.set_attributes({
                    "classes": len(expected),
                    "chosen": chosen.candidate.name,
                })
                parity_span.finish()
        finally:
            applier.restore()

        if chosen is ref_result:
            if not why:
                why.append(
                    "no candidate beat the running configuration; "
                    "keeping it"
                )
        else:
            why.extend(chosen.candidate.notes)
            why.append(
                f"{chosen.candidate.name}: "
                f"{chosen.throughput_qps:.1f} qps vs reference "
                f"{ref_result.throughput_qps:.1f} qps on the replayed "
                f"capture, tie-class parity verified over "
                f"{len(expected)} query classes"
            )
        speedup = (
            chosen.throughput_qps / ref_result.throughput_qps
            if ref_result.throughput_qps > 0 else 1.0
        )
        return PlanReport(
            features=features,
            reference=ref_result,
            candidates=results,
            chosen=chosen.candidate.name,
            validated=True,
            speedup=speedup,
            why=why,
            transport=transport,
            budget=total_budget,
            rounds=rounds,
        )
    finally:
        if span is not None:
            span.finish()


def plan_from_features(
    features: WorkloadFeatures,
    reference: PlanCandidate,
    max_candidates: int = 6,
    cost_model: Optional[Any] = None,
) -> PlanReport:
    """Heuristic-only plan (no replay validation) from bare features.

    This is what ``cirank plan --from-stats`` produces when only a live
    ``/stats`` scrape is available: candidates are ranked by the cost
    model alone, ``validated`` is False, and the report says so.  Treat
    it as a hint of what to capture and replay, never as a proof.
    """
    model = cost_model or estimate_cost
    pool = generate_candidates(
        features, reference, limit=max_candidates, cost_model=model,
    )
    ref_result = CandidateResult(
        candidate=reference, estimated_cost=model(features, reference),
    )
    results = [
        CandidateResult(candidate=c, estimated_cost=model(features, c))
        for c in pool
    ]
    best = min(
        [ref_result] + results, key=lambda r: r.estimated_cost,
    )
    why = [
        "heuristic only: no capture was replayed, so this plan is "
        "NOT validated — capture a workload log and run "
        "`cirank plan --log` before applying",
    ]
    why.extend(best.candidate.notes)
    return PlanReport(
        features=features,
        reference=ref_result,
        candidates=results,
        chosen=best.candidate.name,
        validated=False,
        speedup=1.0,
        why=why,
        transport="none",
        budget=0,
        rounds=0,
    )
