"""Configuration objects for the CI-Rank system.

Four dataclasses gather every tunable the system exposes:

* :class:`RWMPParams` — the message-passing model parameters (Section III):
  the teleportation constant ``c`` of the underlying random walk, and the
  dampening parameters ``alpha`` (probability a surfer keeps a message per
  talk step) and ``g`` (listener group size).
* :class:`SearchParams` — the top-k search parameters (Section IV): ``k``
  and the answer-tree diameter cap ``D``.
* :class:`EdgeWeights` — the per-edge-type weights of Table II, plus helpers
  to register additional link types.
* :class:`ServingParams` — the asyncio serving front end's knobs
  (:mod:`repro.serving`): bind address, worker pool size, batching,
  single-flight dedup, and per-query deadlines.

All paper-level values default to the paper's choices (``alpha = 0.15``,
``g = 20``, ``c = 0.15``, ``k = 5``, ``D = 4``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple

from .exceptions import ReproError

#: The paper's default teleportation constant for Equation (1).
DEFAULT_TELEPORT = 0.15

#: The paper's recommended dampening parameters (Section VI-B).
DEFAULT_ALPHA = 0.15
DEFAULT_GROUP_SIZE = 20.0

#: Default top-k and diameter cap used in the efficiency experiments.
DEFAULT_K = 5
DEFAULT_DIAMETER = 4


@dataclass(frozen=True)
class RWMPParams:
    """Parameters of the Random Walk with Message Passing model.

    Attributes:
        alpha: probability that a message-carrying surfer keeps the message
            in one talk step; the minimum possible dampening rate.  The
            paper finds ``0.1 <= alpha <= 0.25`` effective and uses 0.15.
        g: listener group size per talk step; with ``alpha`` fixed, larger
            ``g`` lowers the maximum dampening rate.  The paper uses 20.
        teleport: the teleportation constant ``c`` in Equation (1).
    """

    alpha: float = DEFAULT_ALPHA
    g: float = DEFAULT_GROUP_SIZE
    teleport: float = DEFAULT_TELEPORT

    def __post_init__(self) -> None:
        if not 0.0 < self.alpha < 1.0:
            raise ReproError(f"alpha must be in (0, 1), got {self.alpha}")
        if self.g <= 1.0:
            raise ReproError(f"g must be > 1, got {self.g}")
        if not 0.0 < self.teleport < 1.0:
            raise ReproError(f"teleport must be in (0, 1), got {self.teleport}")


@dataclass(frozen=True)
class SearchParams:
    """Parameters of the top-k answer search (Section IV).

    Attributes:
        k: number of answers to return.
        diameter: cap ``D`` on the answer-tree diameter (in edges).
        strict_merge: when True (default — the paper's rule), a merge
            must cover strictly more keywords than either operand, which
            prunes redundant-coverage trees and is dramatically faster;
            when False, any cycle-free merge is allowed, making the
            search provably complete over all Definition-3 answers
            (useful for verification; in measurements the two modes
            return identical top-k on realistic workloads).
        max_candidates: safety valve — abort the search after this many
            candidate-tree expansions (0 disables the cap).
        semantics: ``"and"`` (the paper's assumption — answers must cover
            every keyword) or ``"or"`` (answers may cover any non-empty
            subset; the SPARK-style relaxation).  OR mode widens the
            answer space and weakens the search bounds accordingly.
        lazy_bounds: when True (default), candidates are admitted on a
            cheap inherited bound and the full ``ce/pe`` bound is only
            computed when they reach the head of the priority queue
            (lazy best-first evaluation — see docs/ALGORITHMS.md §2.6).
            Both modes return identical top-k up to tie classes; False
            restores the eager per-candidate bound evaluation, mainly
            useful for differential testing and benchmarking.
        engine: candidate representation of the lazy search loop.
            ``"arena"`` (default) stores candidates in a flat columnar
            arena (:mod:`repro.search.arena`) — admission is an array
            append and heap entries carry integer candidate ids;
            ``"object"`` keeps the per-candidate
            :class:`~repro.search.candidate.CandidateTree` objects (the
            reference implementation the arena is differentially pinned
            against); ``"sharded"`` partitions the graph at star-table
            cut points and runs one arena search per shard with global
            bound-based early termination
            (:mod:`repro.search.sharded`).  All engines return identical
            top-k up to tie classes.  Eager evaluation
            (``lazy_bounds=False``) always runs the object path
            regardless of this setting.
        shards: shard count for ``engine="sharded"`` (ignored by the
            single-process engines).
    """

    k: int = DEFAULT_K
    diameter: int = DEFAULT_DIAMETER
    strict_merge: bool = True
    max_candidates: int = 0
    semantics: str = "and"
    lazy_bounds: bool = True
    engine: str = "arena"
    shards: int = 4

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ReproError(f"k must be >= 1, got {self.k}")
        if self.diameter < 0:
            raise ReproError(f"diameter must be >= 0, got {self.diameter}")
        if self.max_candidates < 0:
            raise ReproError("max_candidates must be >= 0")
        if self.semantics not in ("and", "or"):
            raise ReproError(
                f"semantics must be 'and' or 'or', got {self.semantics!r}"
            )
        if self.engine not in ("arena", "object", "sharded"):
            raise ReproError(
                f"engine must be 'arena', 'object', or 'sharded', "
                f"got {self.engine!r}"
            )
        if self.shards < 1:
            raise ReproError(f"shards must be >= 1, got {self.shards}")


@dataclass(frozen=True)
class ServingParams:
    """Knobs of the asyncio serving front end (:mod:`repro.serving`).

    Attributes:
        host: bind address of the HTTP front end.
        port: TCP port (0 = ephemeral, reported after bind).
        workers: executor threads searching concurrently; the event loop
            itself never runs a search.
        max_batch_size: queries dispatched to one worker as a batch (the
            batch shares a thread handoff and arrives with warm caches).
        max_wait_ms: how long a forming batch waits for companions once
            its first query arrived (0 dispatches immediately).
        deadline_ms: default per-query deadline; 0 runs every search to
            proven completion.  Requests can override per call.
        heartbeat: anytime-snapshot cadence (queue pops between
            heartbeat snapshots) used when a deadline is set — smaller
            values bound deadline overshoot tighter at slightly more
            generator overhead.
        dedup: coalesce identical in-flight queries into one execution
            (single-flight stampede protection in front of the answer
            cache).
        max_request_bytes: request-body size limit (HTTP 413 beyond it).
        drain_seconds: graceful-shutdown budget for in-flight queries
            and open connections.
        trace: enable query tracing (trace-id'd span trees and the
            slow-query ring; :mod:`repro.obs.trace`).  Off, requests
            carry no spans and ``trace_id`` is null in responses.
        trace_sample: fraction of requests traced (1.0 = all); an
            unsampled request costs one RNG draw.
        slow_query_ms: root spans at or above this duration are dumped
            (full span tree) into the slow-query ring and logged at
            WARNING.
        slow_log_size: slow-query ring capacity (oldest dumps evicted).
        metrics: enable the metrics registry and ``GET /metrics``
            (Prometheus text exposition; :mod:`repro.obs.metrics`).
        capture_path: when non-empty, append one JSONL record per
            accepted request to this rotating workload log
            (:mod:`repro.obs.workload`); the audit invariant extends to
            ``logged == received``.
        capture_max_bytes: rotate the capture log at this size.
        capture_backups: rotated generations kept (``.1`` … ``.N``).
        plan: path of the planner report this deployment adopted at
            startup (``cirank serve --plan``; :mod:`repro.planner`).
            Informational — the knobs themselves are already folded
            into this object and the system's ``SearchParams`` — but it
            surfaces in ``/stats`` and the ``cirank_plan_applied``
            gauge so operators can see *which* plan is live.
    """

    host: str = "127.0.0.1"
    port: int = 8377
    workers: int = 4
    max_batch_size: int = 8
    max_wait_ms: float = 2.0
    deadline_ms: float = 0.0
    heartbeat: int = 16
    dedup: bool = True
    max_request_bytes: int = 1 << 20
    drain_seconds: float = 10.0
    trace: bool = True
    trace_sample: float = 1.0
    slow_query_ms: float = 500.0
    slow_log_size: int = 64
    metrics: bool = True
    capture_path: str = ""
    capture_max_bytes: int = 16 << 20
    capture_backups: int = 3
    plan: str = ""

    def __post_init__(self) -> None:
        if self.workers < 1:
            raise ReproError(f"workers must be >= 1, got {self.workers}")
        if self.max_batch_size < 1:
            raise ReproError(
                f"max_batch_size must be >= 1, got {self.max_batch_size}"
            )
        if self.max_wait_ms < 0:
            raise ReproError(
                f"max_wait_ms must be >= 0, got {self.max_wait_ms}"
            )
        if self.deadline_ms < 0:
            raise ReproError(
                f"deadline_ms must be >= 0, got {self.deadline_ms}"
            )
        if self.heartbeat < 1:
            raise ReproError(f"heartbeat must be >= 1, got {self.heartbeat}")
        if self.max_request_bytes < 1:
            raise ReproError("max_request_bytes must be >= 1")
        if self.drain_seconds < 0:
            raise ReproError("drain_seconds must be >= 0")
        if not 0 <= self.port <= 65535:
            raise ReproError(f"port must be in [0, 65535], got {self.port}")
        if not 0.0 <= self.trace_sample <= 1.0:
            raise ReproError(
                f"trace_sample must be in [0, 1], got {self.trace_sample}"
            )
        if self.slow_query_ms < 0:
            raise ReproError(
                f"slow_query_ms must be >= 0, got {self.slow_query_ms}"
            )
        if self.slow_log_size < 0:
            raise ReproError(
                f"slow_log_size must be >= 0, got {self.slow_log_size}"
            )
        if self.capture_max_bytes < 1:
            raise ReproError("capture_max_bytes must be >= 1")
        if self.capture_backups < 0:
            raise ReproError("capture_backups must be >= 0")


def _table2_weights() -> Dict[Tuple[str, str], float]:
    """The edge weights of Table II, keyed by (source table, target table).

    Citation links are a self-relationship on the paper table and are keyed
    by the special link names ``("paper:cites", "paper")`` and
    ``("paper", "paper:cites")`` — see :class:`EdgeWeights.weight_for`.
    """
    return {
        # IMDB (Fig. 1(b))
        ("actor", "movie"): 1.0,
        ("movie", "actor"): 1.0,
        ("actress", "movie"): 1.0,
        ("movie", "actress"): 1.0,
        ("director", "movie"): 1.0,
        ("movie", "director"): 1.0,
        ("producer", "movie"): 0.5,
        ("movie", "producer"): 0.5,
        ("company", "movie"): 0.5,
        ("movie", "company"): 0.5,
        # DBLP (Fig. 1(a))
        ("conference", "paper"): 0.5,
        ("paper", "conference"): 0.5,
        ("author", "paper"): 1.0,
        ("paper", "author"): 1.0,
        # Citations: citing -> cited 0.5, cited -> citing 0.1 (Table II).
        ("paper#cites", "paper"): 0.5,
        ("paper", "paper#cites"): 0.1,
    }


@dataclass
class EdgeWeights:
    """Edge-type weight table (Table II) with sensible fallbacks.

    Weights are looked up by ``(source_table, target_table)`` pairs in
    lowercase.  Self-referencing links (e.g. paper citations) are
    disambiguated by suffixing the *link name* with ``#<fk-name>`` on the
    side that owns the foreign key; :meth:`weight_for` handles the lookup.

    Attributes:
        weights: the mapping; initialized to Table II.
        default: weight used for unknown edge types.
    """

    weights: Dict[Tuple[str, str], float] = field(default_factory=_table2_weights)
    default: float = 1.0

    def set_weight(self, source: str, target: str, weight: float) -> None:
        """Register or override the weight of one directed edge type."""
        if weight <= 0:
            raise ReproError(f"edge weight must be positive, got {weight}")
        self.weights[(source.lower(), target.lower())] = weight

    def weight_for(
        self,
        source: str,
        target: str,
        link: str = "",
        owner: str = "source",
    ) -> float:
        """Return the weight of a ``source -> target`` edge.

        Args:
            source: source table name.
            target: target table name.
            link: optional foreign-key/link name; used to disambiguate
                self-referencing relations (the ``paper#cites`` keys above).
            owner: which end owns the link — ``"source"`` when the edge
                runs from the owning side (citing -> cited), ``"target"``
                for the reverse direction.
        """
        source = source.lower()
        target = target.lower()
        if link:
            if owner == "source":
                keyed = (f"{source}#{link.lower()}", target)
            else:
                keyed = (source, f"{target}#{link.lower()}")
            if keyed in self.weights:
                return self.weights[keyed]
        return self.weights.get((source, target), self.default)
