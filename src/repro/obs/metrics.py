"""A metrics registry with Prometheus text exposition (stdlib only).

Three metric kinds, the smallest set a serving system needs:

* :class:`Counter` — a monotonically increasing total (requests
  received, errors, seconds spent in a search phase);
* :class:`Gauge` — a point-in-time value that can move both ways
  (in-flight requests, cache size, answer-cache hit ratio);
* :class:`Histogram` — fixed-bucket cumulative distribution (request
  latency, gap at deadline, batch size).  Buckets are chosen at
  registration and never change, so two scrapes are always comparable.

Counters and gauges optionally take a ``fn`` callback: the value is
read at scrape time instead of being pushed.  This is how existing
counter blocks (:class:`repro.serving.stats.ServingStats`, the answer
cache's :class:`~repro.storage.answer_cache.AnswerCacheStats`) surface
in ``/metrics`` without double bookkeeping — the registry mirrors the
one source of truth instead of maintaining a copy.

Exposition follows the Prometheus text format (version 0.0.4): ``#
HELP`` / ``# TYPE`` headers, ``name{label="value"} value`` samples, and
for histograms the cumulative ``_bucket{le=...}`` series ending in
``le="+Inf"`` plus ``_sum`` and ``_count``.  ``tests/test_obs_metrics.py``
parses the rendered text back and checks it against :meth:`MetricsRegistry.as_dict`
(round trip) and asserts bucket monotonicity.

Thread-safety: every mutation takes the owning metric's lock; rendering
snapshots under the same locks.  The critical sections are a few
arithmetic operations, so contention is irrelevant next to a search.
"""

from __future__ import annotations

import re
import threading
from bisect import bisect_left
from typing import (
    Any,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Tuple,
)

#: Default latency buckets in milliseconds — sub-millisecond cache hits
#: through multi-second cold searches.
DEFAULT_LATENCY_BUCKETS_MS = (
    1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0,
    500.0, 1000.0, 2500.0, 5000.0, 10000.0,
)

#: Default buckets for small-count distributions (batch sizes).
DEFAULT_SIZE_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0)

_NAME_RE = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
_LABEL_RE = re.compile(r"^[a-zA-Z_][a-zA-Z0-9_]*$")


def _escape_label(value: str) -> str:
    return (
        str(value)
        .replace("\\", r"\\")
        .replace("\n", r"\n")
        .replace('"', r'\"')
    )


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if value == float("-inf"):
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _labels_text(names: Sequence[str], values: Sequence[str]) -> str:
    if not names:
        return ""
    pairs = ",".join(
        f'{name}="{_escape_label(value)}"'
        for name, value in zip(names, values)
    )
    return "{" + pairs + "}"


class Metric:
    """Common bookkeeping: name, help text, declared label names."""

    kind = "untyped"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
    ) -> None:
        if not _NAME_RE.match(name):
            raise ValueError(f"invalid metric name {name!r}")
        for label in labelnames:
            if not _LABEL_RE.match(label):
                raise ValueError(f"invalid label name {label!r}")
        self.name = name
        self.help_text = help_text
        self.labelnames = tuple(labelnames)
        self._lock = threading.Lock()

    def _check_labels(self, values: Sequence[str]) -> Tuple[str, ...]:
        if len(values) != len(self.labelnames):
            raise ValueError(
                f"{self.name} expects labels {self.labelnames}, "
                f"got {len(values)} values"
            )
        return tuple(str(v) for v in values)

    # Subclasses implement render_samples() -> List[str] and
    # sample_dict() -> JSON-able payload.


class Counter(Metric):
    """A monotonically increasing total, optionally label-partitioned.

    With ``fn`` set the counter is *function-backed*: the callback is
    read at scrape time and :meth:`inc` is forbidden — mirroring an
    existing atomic counter rather than owning the count.
    """

    kind = "counter"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        if fn is not None and labelnames:
            raise ValueError("function-backed metrics cannot have labels")
        self._fn = fn
        self._values: Dict[Tuple[str, ...], float] = {}

    def inc(self, amount: float = 1.0) -> None:
        """Increase the unlabeled series (``amount`` must be >= 0)."""
        self.labels().inc(amount)

    def labels(self, *values: str) -> "_CounterChild":
        key = self._check_labels(values)
        return _CounterChild(self, key)

    def value(self, *label_values: str) -> float:
        if self._fn is not None:
            return float(self._fn())
        key = self._check_labels(label_values)
        with self._lock:
            return self._values.get(key, 0.0)

    def _inc(self, key: Tuple[str, ...], amount: float) -> None:
        if self._fn is not None:
            raise ValueError(f"{self.name} is function-backed; cannot inc")
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease")
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def render_samples(self) -> List[str]:
        if self._fn is not None:
            return [f"{self.name} {_format_value(float(self._fn()))}"]
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        return [
            f"{self.name}{_labels_text(self.labelnames, key)} "
            f"{_format_value(value)}"
            for key, value in items
        ]

    def sample_dict(self) -> Dict[str, Any]:
        if self._fn is not None:
            return {"": float(self._fn())}
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        return {",".join(key): value for key, value in items}


class _CounterChild:
    __slots__ = ("_parent", "_key")

    def __init__(self, parent: Counter, key: Tuple[str, ...]) -> None:
        self._parent = parent
        self._key = key

    def inc(self, amount: float = 1.0) -> None:
        self._parent._inc(self._key, amount)


class Gauge(Metric):
    """A value that can go up and down (or be computed at scrape)."""

    kind = "gauge"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        fn: Optional[Callable[[], float]] = None,
    ) -> None:
        super().__init__(name, help_text, labelnames)
        if fn is not None and labelnames:
            raise ValueError("function-backed metrics cannot have labels")
        self._fn = fn
        self._values: Dict[Tuple[str, ...], float] = {}

    def set(self, value: float, *label_values: str) -> None:
        if self._fn is not None:
            raise ValueError(f"{self.name} is function-backed; cannot set")
        key = self._check_labels(label_values)
        with self._lock:
            self._values[key] = float(value)

    def inc(self, amount: float = 1.0, *label_values: str) -> None:
        if self._fn is not None:
            raise ValueError(f"{self.name} is function-backed; cannot inc")
        key = self._check_labels(label_values)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, *label_values: str) -> None:
        self.inc(-amount, *label_values)

    def value(self, *label_values: str) -> float:
        if self._fn is not None:
            return float(self._fn())
        key = self._check_labels(label_values)
        with self._lock:
            return self._values.get(key, 0.0)

    def render_samples(self) -> List[str]:
        if self._fn is not None:
            return [f"{self.name} {_format_value(float(self._fn()))}"]
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        return [
            f"{self.name}{_labels_text(self.labelnames, key)} "
            f"{_format_value(value)}"
            for key, value in items
        ]

    def sample_dict(self) -> Dict[str, Any]:
        if self._fn is not None:
            return {"": float(self._fn())}
        with self._lock:
            items = sorted(self._values.items())
        if not items and not self.labelnames:
            items = [((), 0.0)]
        return {",".join(key): value for key, value in items}


class Histogram(Metric):
    """A fixed-bucket distribution (``le`` = less-than-or-equal bounds).

    Buckets store per-bucket counts internally and render the standard
    cumulative Prometheus series — every scrape's ``_bucket`` values
    are non-decreasing in ``le`` and end at ``_count`` under
    ``le="+Inf"``.
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        labelnames: Sequence[str] = (),
    ) -> None:
        super().__init__(name, help_text, labelnames)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate bucket bounds in {bounds}")
        self.bounds = bounds
        # key -> [per-bucket counts..., overflow], sum, count
        self._states: Dict[Tuple[str, ...], List[Any]] = {}

    def observe(self, value: float, *label_values: str) -> None:
        key = self._check_labels(label_values)
        value = float(value)
        index = bisect_left(self.bounds, value)
        with self._lock:
            state = self._states.get(key)
            if state is None:
                state = [[0] * (len(self.bounds) + 1), 0.0, 0]
                self._states[key] = state
            state[0][index] += 1
            state[1] += value
            state[2] += 1

    def snapshot(
        self, *label_values: str
    ) -> Dict[str, Any]:
        """One series' cumulative buckets, sum, and count."""
        key = self._check_labels(label_values)
        with self._lock:
            state = self._states.get(key)
            counts = list(state[0]) if state else [0] * (len(self.bounds) + 1)
            total = state[1] if state else 0.0
            count = state[2] if state else 0
        cumulative = []
        running = 0
        for c in counts:
            running += c
            cumulative.append(running)
        return {
            "buckets": {
                _format_value(bound): cumulative[i]
                for i, bound in enumerate(self.bounds)
            },
            "inf": cumulative[-1],
            "sum": total,
            "count": count,
        }

    def render_samples(self) -> List[str]:
        with self._lock:
            items = sorted(
                (key, list(state[0]), state[1], state[2])
                for key, state in self._states.items()
            )
        if not items and not self.labelnames:
            items = [((), [0] * (len(self.bounds) + 1), 0.0, 0)]
        lines: List[str] = []
        for key, counts, total, count in items:
            running = 0
            for bound, bucket_count in zip(self.bounds, counts):
                running += bucket_count
                labels = _labels_text(
                    self.labelnames + ("le",),
                    key + (_format_value(bound),),
                )
                lines.append(f"{self.name}_bucket{labels} {running}")
            running += counts[-1]
            labels = _labels_text(
                self.labelnames + ("le",), key + ("+Inf",)
            )
            lines.append(f"{self.name}_bucket{labels} {running}")
            plain = _labels_text(self.labelnames, key)
            lines.append(f"{self.name}_sum{plain} {_format_value(total)}")
            lines.append(f"{self.name}_count{plain} {count}")
        return lines

    def sample_dict(self) -> Dict[str, Any]:
        with self._lock:
            keys = sorted(self._states)
        if not keys and not self.labelnames:
            keys = [()]
        return {",".join(key): self.snapshot(*key) for key in keys}


class MetricsRegistry:
    """The per-daemon metric namespace behind ``GET /metrics``.

    Registration is idempotent by name: asking for an existing metric
    returns it (so layers can register independently), while a kind or
    shape mismatch raises — two subsystems silently sharing a name
    with different meanings is exactly the bug a registry exists to
    prevent.
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._metrics: Dict[str, Metric] = {}

    def _register(self, metric: Metric, **shape: Any) -> Metric:
        with self._lock:
            existing = self._metrics.get(metric.name)
            if existing is None:
                self._metrics[metric.name] = metric
                return metric
            if type(existing) is not type(metric):
                raise ValueError(
                    f"{metric.name} already registered as {existing.kind}"
                )
            if existing.labelnames != metric.labelnames:
                raise ValueError(
                    f"{metric.name} label mismatch: "
                    f"{existing.labelnames} != {metric.labelnames}"
                )
            for attr, value in shape.items():
                if getattr(existing, attr) != value:
                    raise ValueError(
                        f"{metric.name} {attr} mismatch on re-registration"
                    )
            return existing

    def counter(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        fn: Optional[Callable[[], float]] = None,
    ) -> Counter:
        metric = self._register(Counter(name, help_text, labelnames, fn))
        assert isinstance(metric, Counter)
        return metric

    def gauge(
        self,
        name: str,
        help_text: str = "",
        labelnames: Sequence[str] = (),
        fn: Optional[Callable[[], float]] = None,
    ) -> Gauge:
        metric = self._register(Gauge(name, help_text, labelnames, fn))
        assert isinstance(metric, Gauge)
        return metric

    def histogram(
        self,
        name: str,
        help_text: str = "",
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_MS,
        labelnames: Sequence[str] = (),
    ) -> Histogram:
        metric = self._register(
            Histogram(name, help_text, buckets, labelnames),
            bounds=tuple(sorted(float(b) for b in buckets)),
        )
        assert isinstance(metric, Histogram)
        return metric

    def get(self, name: str) -> Optional[Metric]:
        with self._lock:
            return self._metrics.get(name)

    def render(self) -> str:
        """The Prometheus text exposition (version 0.0.4)."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        lines: List[str] = []
        for metric in metrics:
            if metric.help_text:
                lines.append(f"# HELP {metric.name} {metric.help_text}")
            lines.append(f"# TYPE {metric.name} {metric.kind}")
            lines.extend(metric.render_samples())
        return "\n".join(lines) + "\n"

    def as_dict(self) -> Dict[str, Any]:
        """JSON-able snapshot mirroring :meth:`render`."""
        with self._lock:
            metrics = sorted(self._metrics.values(), key=lambda m: m.name)
        return {
            metric.name: {
                "kind": metric.kind,
                "help": metric.help_text,
                "labelnames": list(metric.labelnames),
                "samples": metric.sample_dict(),
            }
            for metric in metrics
        }
