"""Workload replay: re-drive a captured query log against a server.

The replay harness takes raw capture records (from
:func:`repro.obs.workload.read_query_log`), reconstructs each request's
arrival offset relative to the first record, and fires the same
queries with the same parameters at ``rate``x the recorded pace from a
pool of client threads.  Three things come back:

* a latency/lag report in the load generator's summary shape, with
  **error-class counts** (exception class names) instead of a bare
  failure count;
* optional **gate violations** — latency-percentile and error-rate
  ceilings checked against the report, for CI smoke steps;
* the raw (record, response) pairs, so a differential leg can assert
  **tie-class parity**: replaying a capture with deadlines stripped
  must produce top-k tie-class-identical to calling
  :meth:`CIRankSystem.search` directly for every logged query.

Tie classes are the repo's standard equality for ranked results: group
answers by score, compare the *set* of (nodes, edges) trees per score
class, so any legal tie-break permutation compares equal.  The wire
and direct helpers here are the canonical copies of the comparison the
serving benchmark uses.

Imports from ``repro.serving`` happen lazily inside functions:
``serving`` modules import ``repro.obs`` at module scope, and the
package would otherwise be circular.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from queue import Empty, SimpleQueue
from typing import Any, Dict, List, Optional, Sequence, Tuple

from .clock import Clock, get_clock

logger = logging.getLogger(__name__)


def tie_classes_wire(answers: Sequence[Dict[str, Any]]) -> List[Tuple]:
    """Tie classes of a wire-format answer list (JSON documents)."""
    classes: List[Tuple[float, set]] = []
    for answer in answers:
        key = (
            tuple(answer["nodes"]),
            tuple(tuple(edge) for edge in answer["edges"]),
        )
        if classes and classes[-1][0] == answer["score"]:
            classes[-1][1].add(key)
        else:
            classes.append((answer["score"], {key}))
    return [(score, frozenset(trees)) for score, trees in classes]


def tie_classes_direct(answers: Sequence[Any]) -> List[Tuple]:
    """Tie classes of direct :meth:`CIRankSystem.search` answers."""
    classes: List[Tuple[float, set]] = []
    for answer in answers:
        key = (
            tuple(sorted(answer.tree.nodes)),
            tuple(sorted(tuple(e) for e in answer.tree.edges)),
        )
        if classes and classes[-1][0] == answer.score:
            classes[-1][1].add(key)
        else:
            classes.append((answer.score, {key}))
    return [(score, frozenset(trees)) for score, trees in classes]


@dataclass
class ReplayResult:
    """One replayed request: the source record plus what came back."""

    record: Dict[str, Any]
    offset_seconds: float
    lag_ms: float = 0.0
    latency_ms: float = 0.0
    response: Optional[Dict[str, Any]] = None
    error: Optional[str] = None


@dataclass
class ReplayReport:
    """A replay run's measurements and gate verdicts."""

    total_requests: int
    rate: float
    concurrency: int
    elapsed_seconds: float
    throughput_qps: float
    latency_ms: Dict[str, float]
    lag_ms: Dict[str, float]
    error_classes: Dict[str, int]
    deadline_hit: int
    served_from_cache: int
    coalesced: int
    gate_violations: List[str] = field(default_factory=list)
    results: List[ReplayResult] = field(default_factory=list)

    @property
    def errors(self) -> int:
        return sum(self.error_classes.values())

    def as_dict(self) -> Dict[str, Any]:
        return {
            "total_requests": self.total_requests,
            "rate": self.rate,
            "concurrency": self.concurrency,
            "elapsed_seconds": self.elapsed_seconds,
            "throughput_qps": self.throughput_qps,
            "latency_ms": self.latency_ms,
            "lag_ms": self.lag_ms,
            "error_classes": dict(self.error_classes),
            "errors": self.errors,
            "deadline_hit": self.deadline_hit,
            "served_from_cache": self.served_from_cache,
            "coalesced": self.coalesced,
            "gate_violations": list(self.gate_violations),
        }


def _check_gates(
    gates: Dict[str, float],
    latency: Dict[str, float],
    error_classes: Dict[str, int],
    total: int,
) -> List[str]:
    """Evaluate ``{"p50_ms": x, "p99_ms": y, "error_rate": z}`` gates."""
    violations: List[str] = []
    for key, ceiling in gates.items():
        if key.endswith("_ms"):
            quantile = key[: -len("_ms")]
            measured = latency.get(quantile)
            if measured is None:
                violations.append(f"{key}: no successful requests to measure")
            elif measured > ceiling:
                violations.append(
                    f"{key}: {measured:.1f}ms > {ceiling:.1f}ms"
                )
        elif key == "error_rate":
            failed = sum(error_classes.values())
            rate = failed / total if total else 0.0
            if rate > ceiling:
                violations.append(
                    f"error_rate: {rate:.3f} > {ceiling:.3f} "
                    f"({dict(error_classes)})"
                )
        else:
            violations.append(f"unknown gate {key!r}")
    return violations


def replay(
    host: str,
    port: int,
    records: Sequence[Dict[str, Any]],
    rate: float = 1.0,
    concurrency: int = 8,
    honor_deadlines: bool = True,
    gates: Optional[Dict[str, float]] = None,
    timeout: float = 120.0,
    clock: Optional[Clock] = None,
) -> ReplayReport:
    """Re-drive captured ``records`` against a running server.

    Requests are scheduled at ``(ts_i - ts_0) / rate`` seconds after
    the replay starts (``rate=2.0`` replays twice as fast); a worker
    that falls behind fires immediately and the slip is reported in the
    ``lag_ms`` summary.  ``honor_deadlines=False`` strips the recorded
    deadline so every answer is proven — the configuration the parity
    leg needs (:func:`verify_parity`).
    """
    from ..serving.client import ServingClient
    from ..serving.loadgen import summarize

    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    if concurrency < 1:
        raise ValueError(f"concurrency must be >= 1, got {concurrency}")
    if not records:
        raise ValueError("nothing to replay: the capture is empty")
    clk = clock if clock is not None else get_clock()

    ordered = sorted(records, key=lambda r: float(r.get("ts", 0.0)))
    base_ts = float(ordered[0].get("ts", 0.0))
    work: SimpleQueue = SimpleQueue()
    for record in ordered:
        offset = (float(record.get("ts", base_ts)) - base_ts) / rate
        work.put(ReplayResult(record=record, offset_seconds=offset))
    results: List[ReplayResult] = []
    results_lock = threading.Lock()
    start = clk.now()

    def worker() -> None:
        with ServingClient(host, port, timeout=timeout) as client:
            while True:
                try:
                    item = work.get_nowait()
                except Empty:
                    return
                due = start + item.offset_seconds
                delay = due - clk.now()
                if delay > 0:
                    time.sleep(delay)
                item.lag_ms = max(0.0, (clk.now() - due) * 1000.0)
                record = item.record
                deadline = record.get("deadline_ms") or None
                t0 = clk.now()
                try:
                    item.response = client.search(
                        record.get("query", ""),
                        k=record.get("k"),
                        diameter=record.get("diameter"),
                        deadline_ms=deadline if honor_deadlines else None,
                        engine=record.get("engine") or None,
                    )
                except Exception as exc:
                    item.error = type(exc).__name__
                    logger.warning(
                        "replay request failed: %s: %s",
                        type(exc).__name__, exc,
                    )
                item.latency_ms = (clk.now() - t0) * 1000.0
                with results_lock:
                    results.append(item)

    threads = [
        threading.Thread(target=worker, name=f"replay-{i}", daemon=True)
        for i in range(concurrency)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = clk.now() - start

    ok = [r for r in results if r.error is None]
    error_classes: Dict[str, int] = {}
    for r in results:
        if r.error is not None:
            error_classes[r.error] = error_classes.get(r.error, 0) + 1
    latency = summarize([r.latency_ms for r in ok])
    report = ReplayReport(
        total_requests=len(ordered),
        rate=rate,
        concurrency=concurrency,
        elapsed_seconds=elapsed,
        throughput_qps=len(ok) / elapsed if elapsed > 0 else 0.0,
        latency_ms=latency,
        lag_ms=summarize([r.lag_ms for r in results]),
        error_classes=error_classes,
        deadline_hit=sum(
            1 for r in ok if r.response and r.response.get("deadline_hit")
        ),
        served_from_cache=sum(
            1
            for r in ok
            if r.response and r.response.get("served_from_cache")
        ),
        coalesced=sum(
            1 for r in ok if r.response and r.response.get("coalesced")
        ),
        results=results,
    )
    if gates:
        report.gate_violations = _check_gates(
            gates, latency, error_classes, len(ordered)
        )
    return report


def verify_parity(system: Any, report: ReplayReport) -> int:
    """Assert tie-class parity of every replayed answer vs direct search.

    For each successfully replayed proven response, runs the same query
    directly through ``system.search`` and compares tie classes.
    Returns the number of queries checked; raises ``AssertionError`` on
    the first divergence.  Run the replay with
    ``honor_deadlines=False`` first — anytime (unproven) responses are
    legitimately partial and are skipped here.
    """
    checked = 0
    verified: Dict[Tuple, bool] = {}
    for item in report.results:
        response = item.response
        if response is None or not response.get("proven"):
            continue
        record = item.record
        key = (
            record.get("query", ""),
            record.get("k"),
            record.get("diameter"),
            record.get("engine") or "",
        )
        if key in verified:
            checked += 1
            continue
        kwargs: Dict[str, Any] = {}
        if record.get("k") is not None:
            kwargs["k"] = int(record["k"])
        if record.get("diameter") is not None:
            kwargs["diameter"] = int(record["diameter"])
        if record.get("engine"):
            kwargs["engine"] = record["engine"]
        direct = system.search(record.get("query", ""), **kwargs)
        assert tie_classes_wire(response["answers"]) == (
            tie_classes_direct(direct)
        ), f"replayed ranking diverged for {record.get('query')!r}"
        verified[key] = True
        checked += 1
    return checked
