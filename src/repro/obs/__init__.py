"""``repro.obs`` — observability for the CI-Rank serving stack.

Four small, independently usable pieces:

* :mod:`~repro.obs.clock` — the injectable monotonic timebase shared
  by traces, deadlines, and benchmarks;
* :mod:`~repro.obs.trace` — trace-id'd span trees with a ring-buffered
  slow-query log;
* :mod:`~repro.obs.metrics` — counters / gauges / fixed-bucket
  histograms with Prometheus text exposition (``GET /metrics``);
* :mod:`~repro.obs.workload` + :mod:`~repro.obs.replay` — rotating
  JSONL query capture, the deduplicating :class:`Workload` aggregator,
  and the Nx-rate replay harness with tie-class parity checks.

See ``docs/OBSERVABILITY.md`` for the span model, the metric catalog,
and the capture → replay workflow.
"""

from .clock import Clock, ManualClock, SystemClock, get_clock, set_clock
from .logconfig import configure_logging, parse_level
from .metrics import (
    DEFAULT_LATENCY_BUCKETS_MS,
    DEFAULT_SIZE_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from .replay import (
    ReplayReport,
    ReplayResult,
    replay,
    tie_classes_direct,
    tie_classes_wire,
    verify_parity,
)
from .trace import NullTracer, Span, Tracer
from .workload import (
    QueryLogWriter,
    Workload,
    WorkloadEntry,
    capture_record,
    read_query_log,
)

__all__ = [
    "Clock",
    "ManualClock",
    "SystemClock",
    "get_clock",
    "set_clock",
    "configure_logging",
    "parse_level",
    "DEFAULT_LATENCY_BUCKETS_MS",
    "DEFAULT_SIZE_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "ReplayReport",
    "ReplayResult",
    "replay",
    "tie_classes_direct",
    "tie_classes_wire",
    "verify_parity",
    "NullTracer",
    "Span",
    "Tracer",
    "QueryLogWriter",
    "Workload",
    "WorkloadEntry",
    "capture_record",
    "read_query_log",
]
