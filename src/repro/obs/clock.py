"""The observability timebase: one injectable monotonic clock.

Before this module existed every layer picked its own timer —
:mod:`repro.serving.deadline` used ``time.monotonic`` while
:mod:`repro.serving.loadgen` used ``time.perf_counter`` — so a trace
span, a deadline check, and a benchmark latency could disagree about
how long the same request took.  Everything observability-adjacent now
reads one :class:`Clock`:

* :meth:`Clock.now` — monotonic seconds (``time.perf_counter``: the
  highest-resolution monotonic timer the stdlib offers), used for
  durations, deadlines, and latency measurements;
* :meth:`Clock.wall` — epoch seconds (``time.time``), used only where
  an absolute timestamp must survive the process (workload-log arrival
  times, span start timestamps in slow-query dumps).

Tests inject a :class:`ManualClock` and advance it explicitly, so
span durations, slow-query thresholds, and replay schedules are exact
instead of sleep-and-hope.  Production code obtains the process-wide
default via :func:`get_clock` (or accepts a ``clock=None`` argument
defaulting to it); :func:`set_clock` swaps it for a whole process —
useful in harnesses, not meant for the serving hot path.
"""

from __future__ import annotations

import time


class Clock:
    """The two-readings timebase every observability consumer shares."""

    def now(self) -> float:
        """Monotonic seconds — durations, deadlines, latencies."""
        raise NotImplementedError

    def wall(self) -> float:
        """Epoch seconds — durable timestamps (logs, capture records)."""
        raise NotImplementedError


class SystemClock(Clock):
    """The production clock: ``perf_counter`` + ``time.time``."""

    def now(self) -> float:
        return time.perf_counter()

    def wall(self) -> float:
        return time.time()


class ManualClock(Clock):
    """A test clock advanced explicitly.

    ``now()`` and ``wall()`` move in lockstep from configurable
    starting points, so a test can assert exact durations and exact
    capture timestamps without sleeping.
    """

    def __init__(self, start: float = 0.0, wall_start: float = 0.0) -> None:
        self._now = float(start)
        self._wall = float(wall_start)

    def now(self) -> float:
        return self._now

    def wall(self) -> float:
        return self._wall

    def advance(self, seconds: float) -> None:
        """Move both readings forward by ``seconds`` (must be >= 0)."""
        if seconds < 0:
            raise ValueError(f"cannot rewind a clock ({seconds})")
        self._now += seconds
        self._wall += seconds


_DEFAULT_CLOCK: Clock = SystemClock()


def get_clock() -> Clock:
    """The process-wide default clock."""
    return _DEFAULT_CLOCK


def set_clock(clock: Clock) -> Clock:
    """Replace the process-wide default; returns the previous one."""
    global _DEFAULT_CLOCK
    previous = _DEFAULT_CLOCK
    _DEFAULT_CLOCK = clock
    return previous
