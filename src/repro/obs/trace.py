"""Query tracing: trace-id'd span trees with a slow-query ring buffer.

A request entering the daemon opens a **root span**; each layer it
crosses (single-flight, batcher, deadline loop, the search itself)
opens a **child span** under whatever span it was handed.  Spans carry
attributes — the resolved deadline, the coalesced/cache-served verdict,
every ``SearchStats`` phase timer — so one slow-query dump answers
"where did the time go" without re-running anything.

Design constraints, in order:

1. **Cheap when off.**  ``Tracer.start_span`` returns ``None`` when the
   request is not sampled (or tracing is disabled), and every call site
   guards with ``if span is not None`` — the disabled path is one
   comparison, no allocation.  The serving benchmarks gate the enabled
   path too (p50 regression < 5%, ``benchmarks/test_serving.py``).
2. **Explicit propagation.**  There is no thread-local "current span":
   the serving stack crosses an event-loop→worker-thread boundary in
   the batcher, where ambient context silently detaches.  The daemon
   passes the span into the closures it builds; a child created on a
   worker thread appends to its parent's ``children`` list, which is a
   single ``list.append`` (atomic under the GIL — the only concurrent
   mutation pattern we use).
3. **Bounded memory.**  Finished traces are dropped unless slow; slow
   ones are serialized into a ``deque(maxlen=ring_size)``, so the
   slow-query log can run for weeks without growing.

Timestamps come from the injectable :mod:`repro.obs.clock` — monotonic
for durations, wall for the ``start_wall`` field that makes a dumped
trace correlatable with the workload capture log.
"""

from __future__ import annotations

import logging
import os
import random
import threading
from collections import deque
from typing import Any, Dict, List, Optional

from .clock import Clock, get_clock

logger = logging.getLogger(__name__)


def _new_id(nbytes: int) -> str:
    return os.urandom(nbytes).hex()


class Span:
    """One timed operation in a trace tree.

    Spans are created through :meth:`Tracer.start_span` (roots) or
    :meth:`Span.child` and closed with :meth:`finish`; ``finish`` on a
    root hands the whole tree to the tracer for slow-query triage.
    Attribute values must be JSON-able (the slow log serializes them).
    """

    __slots__ = (
        "tracer",
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "start",
        "start_wall",
        "end",
        "attributes",
        "children",
    )

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        trace_id: str,
        parent_id: Optional[str] = None,
    ) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.span_id = _new_id(8)
        self.parent_id = parent_id
        self.name = name
        self.start = tracer.clock.now()
        self.start_wall = tracer.clock.wall()
        self.end: Optional[float] = None
        self.attributes: Dict[str, Any] = {}
        self.children: List["Span"] = []

    def child(self, name: str) -> "Span":
        """Open a child span; safe to call from a different thread."""
        span = Span(self.tracer, name, self.trace_id, self.span_id)
        self.children.append(span)
        return span

    def set_attribute(self, key: str, value: Any) -> None:
        self.attributes[key] = value

    def set_attributes(self, values: Dict[str, Any]) -> None:
        self.attributes.update(values)

    def finish(self) -> None:
        """Close the span (idempotent); roots report to the tracer."""
        if self.end is not None:
            return
        self.end = self.tracer.clock.now()
        self.tracer._finished(self)

    @property
    def duration_seconds(self) -> float:
        end = self.end if self.end is not None else self.tracer.clock.now()
        return end - self.start

    def as_dict(self) -> Dict[str, Any]:
        """The nested JSON-able tree rooted at this span."""
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "start_wall": self.start_wall,
            "duration_ms": self.duration_seconds * 1000.0,
            "attributes": dict(self.attributes),
            "children": [c.as_dict() for c in self.children],
        }

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.finish()


class Tracer:
    """Allocates trace ids, samples, and keeps the slow-query ring.

    ``sample`` is the fraction of roots that get traced (1.0 = all);
    an unsampled request costs one RNG draw and nothing else.  A root
    whose duration reaches ``slow_ms`` has its full tree serialized
    into the ring and logged at WARNING with its trace id — the id is
    also in the client response, so a slow client report can be joined
    to the dump directly.
    """

    def __init__(
        self,
        clock: Optional[Clock] = None,
        slow_ms: float = 500.0,
        ring_size: int = 64,
        sample: float = 1.0,
    ) -> None:
        if not 0.0 <= sample <= 1.0:
            raise ValueError(f"sample must be in [0, 1], got {sample}")
        if ring_size < 0:
            raise ValueError(f"ring_size must be >= 0, got {ring_size}")
        self.clock = clock if clock is not None else get_clock()
        self.slow_ms = float(slow_ms)
        self.sample = float(sample)
        self._rng = random.Random()
        self._lock = threading.Lock()
        self._slow: deque = deque(maxlen=ring_size if ring_size else 1)
        self._ring_enabled = ring_size > 0
        self.spans_started = 0
        self.spans_finished = 0
        self.slow_count = 0

    def start_span(self, name: str) -> Optional[Span]:
        """Open a root span, or ``None`` when the request is unsampled."""
        if self.sample <= 0.0:
            return None
        if self.sample < 1.0 and self._rng.random() >= self.sample:
            return None
        with self._lock:
            self.spans_started += 1
        return Span(self, name, _new_id(16))

    def _finished(self, span: Span) -> None:
        if span.parent_id is not None:
            return
        duration_ms = span.duration_seconds * 1000.0
        with self._lock:
            self.spans_finished += 1
            if duration_ms >= self.slow_ms:
                self.slow_count += 1
                if self._ring_enabled:
                    self._slow.append(span.as_dict())
                slow = True
            else:
                slow = False
        if slow:
            logger.warning(
                "slow query trace_id=%s name=%s duration_ms=%.1f",
                span.trace_id,
                span.name,
                duration_ms,
            )

    def slow_queries(self) -> List[Dict[str, Any]]:
        """Serialized span trees of recent slow queries, oldest first."""
        with self._lock:
            return list(self._slow)

    def counters(self) -> Dict[str, int]:
        with self._lock:
            return {
                "spans_started": self.spans_started,
                "spans_finished": self.spans_finished,
                "slow_queries": self.slow_count,
            }


class NullTracer(Tracer):
    """A tracer that never samples — the ``trace=False`` fast path."""

    def __init__(self, clock: Optional[Clock] = None) -> None:
        super().__init__(clock=clock, sample=0.0, ring_size=0)

    def start_span(self, name: str) -> Optional[Span]:
        return None
