"""Workload capture: a rotating JSONL query log and its aggregator.

The daemon appends one JSON line per *accepted* request — coalesced
waiters included, so the capture satisfies the audit invariant
``logged == received`` (rejected requests never reach the log, exactly
as they never reach the serving pipeline).  Each record carries what a
replay or a planner needs:

``ts``           wall-clock arrival (epoch seconds)
``query``        the raw query text
``k/diameter/deadline_ms/engine``  the request's resolved parameters
``fingerprint``  the params fingerprint (dedup key component)
``origin``       how it was served: ``cache`` / ``coalesced`` / ``search``
``latency_ms``   served latency
``gap``          the anytime gap certificate (0.0 when proven)
``proven``/``deadline_hit``/``trace_id``  triage fields

:class:`QueryLogWriter` rotates at ``max_bytes`` (``log`` →
``log.1`` → … → ``log.N``, oldest dropped) so capture can run
indefinitely; :func:`read_query_log` reads the backups oldest-first so
records come back in arrival order.

:class:`Workload` turns a capture into a replayable description: it
dedups records on (query text, params fingerprint) into
**arrival-count** entries over the observed period, following the
workload-forecasting shape where a logged workload is a bag of
(query, count) pairs linearly rescalable to any target period —
``rescale`` multiplies counts by ``target/observed`` with a floor of
one arrival per observed query, so scaling down never silently drops a
query class.
"""

from __future__ import annotations

import json
import logging
import os
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

logger = logging.getLogger(__name__)


class QueryLogWriter:
    """Append-only rotating JSONL writer (thread-safe).

    Rotation happens *before* a write that would push the active file
    past ``max_bytes``: ``path`` shifts to ``path.1``, existing
    ``path.i`` to ``path.(i+1)``, and ``path.(backups)`` is dropped.
    With ``backups=0`` the active file is simply truncated.
    """

    def __init__(
        self,
        path: str,
        max_bytes: int = 16 << 20,
        backups: int = 3,
    ) -> None:
        if max_bytes <= 0:
            raise ValueError(f"max_bytes must be > 0, got {max_bytes}")
        if backups < 0:
            raise ValueError(f"backups must be >= 0, got {backups}")
        self.path = path
        self.max_bytes = max_bytes
        self.backups = backups
        self._lock = threading.Lock()
        directory = os.path.dirname(os.path.abspath(path))
        os.makedirs(directory, exist_ok=True)
        self._fh = open(path, "a", encoding="utf-8")
        self.records_written = 0
        self.rotations = 0

    def write(self, record: Dict[str, Any]) -> None:
        line = json.dumps(record, separators=(",", ":"), sort_keys=True)
        data = line + "\n"
        with self._lock:
            if self._fh.tell() + len(data) > self.max_bytes:
                self._rotate()
            self._fh.write(data)
            self._fh.flush()
            self.records_written += 1

    def _rotate(self) -> None:
        self._fh.close()
        if self.backups > 0:
            oldest = f"{self.path}.{self.backups}"
            if os.path.exists(oldest):
                os.remove(oldest)
            for i in range(self.backups - 1, 0, -1):
                src = f"{self.path}.{i}"
                if os.path.exists(src):
                    os.replace(src, f"{self.path}.{i + 1}")
            os.replace(self.path, f"{self.path}.1")
            self._fh = open(self.path, "a", encoding="utf-8")
        else:
            self._fh = open(self.path, "w", encoding="utf-8")
        self.rotations += 1
        logger.info("rotated query log %s (rotation #%d)", self.path, self.rotations)

    def close(self) -> None:
        with self._lock:
            if not self._fh.closed:
                self._fh.close()

    def __enter__(self) -> "QueryLogWriter":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.close()


def read_query_log(path: str) -> List[Dict[str, Any]]:
    """All records for ``path`` including rotated backups, oldest first.

    Backups are read highest-numbered first (``.N`` holds the oldest
    records), then the active file; malformed lines (a crash mid-write)
    are skipped with a warning rather than poisoning the whole capture.
    """
    files: List[str] = []
    suffix = 1
    while os.path.exists(f"{path}.{suffix}"):
        files.append(f"{path}.{suffix}")
        suffix += 1
    files.reverse()
    if os.path.exists(path):
        files.append(path)
    records: List[Dict[str, Any]] = []
    skipped = 0
    for name in files:
        with open(name, "r", encoding="utf-8") as fh:
            for line in fh:
                line = line.strip()
                if not line:
                    continue
                try:
                    records.append(json.loads(line))
                except json.JSONDecodeError:
                    skipped += 1
    if skipped:
        logger.warning("skipped %d malformed lines reading %s", skipped, path)
    return records


def _record_key(record: Dict[str, Any]) -> Tuple[str, str]:
    return (str(record.get("query", "")), str(record.get("fingerprint", "")))


@dataclass
class WorkloadEntry:
    """One deduplicated query class with its observed arrival count."""

    query: str
    arrival_count: int
    k: int = 5
    diameter: Optional[int] = None
    deadline_ms: float = 0.0
    engine: str = ""
    fingerprint: str = ""

    def request(self) -> Dict[str, Any]:
        """The replayable request payload for this query class."""
        payload: Dict[str, Any] = {"query": self.query, "k": self.k}
        if self.diameter is not None:
            payload["diameter"] = self.diameter
        if self.deadline_ms:
            payload["deadline_ms"] = self.deadline_ms
        if self.engine:
            payload["engine"] = self.engine
        return payload


@dataclass
class Workload:
    """A deduplicated, rescalable description of captured traffic."""

    entries: List[WorkloadEntry] = field(default_factory=list)
    period_seconds: float = 0.0

    @classmethod
    def from_records(cls, records: Sequence[Dict[str, Any]]) -> "Workload":
        """Aggregate raw capture records into arrival-count entries.

        The observed period is last-arrival minus first-arrival; a
        single-record capture has period 0 and rescaling it treats the
        capture as one instant (counts scale by the requested period
        directly being meaningless, so they are left unchanged).
        """
        counts: Dict[Tuple[str, str], WorkloadEntry] = {}
        first_ts: Optional[float] = None
        last_ts: Optional[float] = None
        for record in records:
            ts = record.get("ts")
            if isinstance(ts, (int, float)):
                first_ts = ts if first_ts is None else min(first_ts, ts)
                last_ts = ts if last_ts is None else max(last_ts, ts)
            key = _record_key(record)
            entry = counts.get(key)
            if entry is None:
                diameter = record.get("diameter")
                counts[key] = WorkloadEntry(
                    query=str(record.get("query", "")),
                    arrival_count=1,
                    k=int(record.get("k", 5)),
                    diameter=int(diameter) if diameter is not None else None,
                    deadline_ms=float(record.get("deadline_ms", 0.0) or 0.0),
                    engine=str(record.get("engine", "") or ""),
                    fingerprint=str(record.get("fingerprint", "")),
                )
            else:
                entry.arrival_count += 1
        period = 0.0
        if first_ts is not None and last_ts is not None:
            period = max(0.0, last_ts - first_ts)
        return cls(entries=list(counts.values()), period_seconds=period)

    @property
    def total_arrivals(self) -> int:
        return sum(e.arrival_count for e in self.entries)

    def duplicate_fraction(self) -> float:
        """Fraction of arrivals that repeat an earlier query class."""
        total = self.total_arrivals
        if total == 0:
            return 0.0
        return (total - len(self.entries)) / total

    def rescale(self, period_seconds: float) -> "Workload":
        """A copy scaled linearly to a new period.

        Counts multiply by ``period_seconds / observed_period`` with a
        floor of one arrival per entry — every observed query class
        survives any downscale.  When the requested period is so small
        that *every* class would land on the floor, a naive multiply
        would flatten a 40:20:4 capture into 1:1:1 and silently erase
        the relative arrival rates; the multiplier is clamped instead so
        the smallest class scales to exactly one arrival and the ratio
        ordering survives (40:20:4 → 10:5:1).
        """
        if period_seconds <= 0:
            raise ValueError(
                f"period_seconds must be > 0, got {period_seconds}"
            )
        if self.period_seconds <= 0:
            multiplier = 1.0
        else:
            multiplier = period_seconds / self.period_seconds
            counts = [e.arrival_count for e in self.entries]
            if counts and max(counts) * multiplier < 1.0:
                multiplier = 1.0 / min(counts)
        entries = [
            WorkloadEntry(
                query=e.query,
                arrival_count=max(int(e.arrival_count * multiplier), 1),
                k=e.k,
                diameter=e.diameter,
                deadline_ms=e.deadline_ms,
                engine=e.engine,
                fingerprint=e.fingerprint,
            )
            for e in self.entries
        ]
        return Workload(entries=entries, period_seconds=period_seconds)

    def to_mix(self, seed: int = 0) -> List[Dict[str, Any]]:
        """Expand to a shuffled flat request list for the load generator."""
        import random

        mix: List[Dict[str, Any]] = []
        for entry in self.entries:
            mix.extend(entry.request() for _ in range(entry.arrival_count))
        random.Random(seed).shuffle(mix)
        return mix

    def as_dict(self) -> Dict[str, Any]:
        return {
            "period_seconds": self.period_seconds,
            "total_arrivals": self.total_arrivals,
            "unique_queries": len(self.entries),
            "duplicate_fraction": self.duplicate_fraction(),
            "entries": [
                {
                    "query": e.query,
                    "arrival_count": e.arrival_count,
                    "k": e.k,
                    "diameter": e.diameter,
                    "deadline_ms": e.deadline_ms,
                    "engine": e.engine,
                }
                for e in sorted(
                    self.entries,
                    key=lambda e: (-e.arrival_count, e.query),
                )
            ],
        }


def capture_record(
    *,
    ts: float,
    query: str,
    k: int,
    diameter: Optional[int],
    deadline_ms: float,
    engine: Optional[str],
    fingerprint: str,
    origin: str,
    latency_ms: float,
    gap: Optional[float],
    proven: bool,
    deadline_hit: bool,
    trace_id: Optional[str],
) -> Dict[str, Any]:
    """The canonical capture-record shape (one place, one schema)."""
    return {
        "ts": ts,
        "query": query,
        "k": k,
        "diameter": diameter,
        "deadline_ms": deadline_ms,
        "engine": engine or "",
        "fingerprint": fingerprint,
        "origin": origin,
        "latency_ms": latency_ms,
        "gap": gap,
        "proven": proven,
        "deadline_hit": deadline_hit,
        "trace_id": trace_id,
    }
