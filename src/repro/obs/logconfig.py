"""Logging setup for the serving stack (``cirank serve --log-level``).

Every module in ``repro/`` gets its logger the stdlib way
(``logging.getLogger(__name__)``); this module owns the *root
configuration* for processes we control end-to-end — the ``cirank``
CLI entry points.  Library code never calls :func:`configure_logging`;
an embedding application keeps full control of handlers.

The format puts the logger name first because that is how serving logs
are grepped (``repro.serving.daemon``, ``repro.obs.trace``), and
includes milliseconds because everything interesting in a serving
daemon happens between whole seconds.
"""

from __future__ import annotations

import logging
from typing import Optional, Union

LOG_FORMAT = (
    "%(asctime)s.%(msecs)03d %(levelname)-7s %(name)s: %(message)s"
)
DATE_FORMAT = "%H:%M:%S"


def parse_level(level: Union[str, int]) -> int:
    """``"debug"``/``"INFO"``/numeric → a stdlib logging level."""
    if isinstance(level, int):
        return level
    resolved = logging.getLevelName(str(level).upper())
    if not isinstance(resolved, int):
        raise ValueError(f"unknown log level {level!r}")
    return resolved


def configure_logging(
    level: Union[str, int] = "info",
    stream: Optional[object] = None,
) -> None:
    """Configure the ``repro`` logger tree for a CLI process.

    Idempotent: reconfiguring replaces the handler installed by a
    previous call instead of stacking duplicates.  Only the ``repro``
    subtree is touched — the root logger stays whatever the embedding
    process made it.
    """
    resolved = parse_level(level)
    root = logging.getLogger("repro")
    for handler in list(root.handlers):
        if getattr(handler, "_cirank_handler", False):
            root.removeHandler(handler)
    handler = logging.StreamHandler(stream)
    handler.setFormatter(logging.Formatter(LOG_FORMAT, DATE_FORMAT))
    handler._cirank_handler = True  # type: ignore[attr-defined]
    root.addHandler(handler)
    root.setLevel(resolved)
    root.propagate = False
