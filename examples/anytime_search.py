#!/usr/bin/env python3
"""Anytime top-k search: answers now, the proof later.

The branch-and-bound loop is an anytime algorithm: at every moment the
kept answers are the best found so far and the priority queue's head
bounds everything undiscovered.  ``BranchAndBoundSearch.snapshots()``
exposes that: each snapshot carries the current answers, the frontier
bound, and — at the end — the optimality proof.

This example watches the snapshots of a query on the synthetic IMDB
graph and shows the quality gap shrinking to zero.

Run:  python examples/anytime_search.py
"""

from repro import (
    BranchAndBoundSearch,
    CIRankSystem,
    ImdbConfig,
    SearchParams,
    WorkloadConfig,
    generate_imdb,
    generate_workload,
)

MERGE_TABLES = ("actor", "actress", "director", "producer")


def main() -> None:
    db = generate_imdb(ImdbConfig(movies=120, actors=140, actresses=80,
                                  directors=40, producers=24, companies=20))
    system = CIRankSystem.from_database(db, merge_tables=MERGE_TABLES)
    workload = generate_workload(
        system.graph, system.index, WorkloadConfig.synthetic(queries=4)
    )
    query = next(
        q for q in workload if q.kind in ("distant_pair", "triple")
    )
    print(f"query: {query.text!r}  ({query.kind})")

    match = system.matcher.match(query.text)
    scorer = system.scorer_for(match)
    search = BranchAndBoundSearch(
        system.graph, scorer, match, SearchParams(k=5, diameter=4)
    )

    print(f"{'snapshot':>8} {'best':>10} {'kth':>10} "
          f"{'frontier':>10} {'gap':>10}")
    for i, snapshot in enumerate(search.snapshots()):
        best = snapshot.answers[0].score if snapshot.answers else float("nan")
        kth = snapshot.answers[-1].score if snapshot.answers else float("nan")
        marker = "  <- proven optimal" if snapshot.proven_optimal else ""
        print(f"{i:>8} {best:>10.4g} {kth:>10.4g} "
              f"{snapshot.frontier_bound:>10.4g} "
              f"{snapshot.gap:>10.4g}{marker}")

    print("\nfinal answers:")
    for rank, answer in enumerate(snapshot.answers, start=1):
        print(f"  {rank}. {system.describe(answer)}")


if __name__ == "__main__":
    main()
