#!/usr/bin/env python3
"""Explaining a ranking: the message-flow breakdown of RWMP scores.

CI-Rank's score is a composition of interpretable quantities, so "why is
answer A above answer B?" has a mechanical explanation: per-source
generation counts, per-hop splits and dampening, and the binding minimum
at each keyword node.  This example runs a query and prints the full
breakdown of the top two answers side by side.

Run:  python examples/explain_ranking.py
"""

from repro import (
    CIRankSystem,
    ImdbConfig,
    WorkloadConfig,
    generate_imdb,
    generate_workload,
)

MERGE_TABLES = ("actor", "actress", "director", "producer")


def main() -> None:
    db = generate_imdb(ImdbConfig(movies=120, actors=140, actresses=80,
                                  directors=40, producers=24, companies=20))
    system = CIRankSystem.from_database(db, merge_tables=MERGE_TABLES)
    workload = generate_workload(
        system.graph, system.index, WorkloadConfig.synthetic(queries=6)
    )
    query = next(q for q in workload if q.kind == "distant_pair")
    print(f"query: {query.text!r}\n")

    answers = system.search(query.text, k=2, diameter=4)
    for rank, answer in enumerate(answers, start=1):
        print(f"--- answer #{rank} ---")
        print(system.explain(query.text, answer))
        print()

    if len(answers) >= 2:
        print("The difference is visible hop by hop: the winning answer's "
              "connector dampens less (it is more important), so more of "
              "each source's messages survive the crossing.")


if __name__ == "__main__":
    main()
