#!/usr/bin/env python3
"""Quickstart: build a CI-Rank deployment and run keyword queries.

Generates a synthetic IMDB-style database (Fig. 1(b) schema), wires the
full stack (graph -> inverted index -> PageRank importance -> RWMP), and
runs a few top-k searches, printing the joined tuple trees.

Run:  python examples/quickstart.py
"""

from repro import (
    CIRankSystem,
    ImdbConfig,
    WorkloadConfig,
    generate_imdb,
    generate_workload,
)

MERGE_TABLES = ("actor", "actress", "director", "producer")


def main() -> None:
    print("generating a synthetic IMDB database...")
    db = generate_imdb(ImdbConfig(movies=150, actors=160, actresses=90,
                                  directors=45, producers=25, companies=20))
    print(f"  {len(db)} tuples, {db.link_count()} links")

    print("building the CI-Rank system (graph, index, importance)...")
    system = CIRankSystem.from_database(db, merge_tables=MERGE_TABLES)
    graph = system.graph
    print(f"  graph: {graph.node_count} nodes, {graph.edge_count} edges")
    print(f"  importance converged: {system.importance.converged}")

    print("attaching the star index (Section V-B)...")
    star = system.build_star_index()
    print(f"  {star.star_node_count} star nodes, "
          f"{star.entry_count} index entries")

    # Mint a few realistic queries from the data itself.
    workload = generate_workload(
        graph, system.index, WorkloadConfig.synthetic(queries=3)
    )
    for query in workload:
        print(f"\nquery: {query.text!r}  ({query.kind})")
        answers = system.search(query.text, k=3, diameter=4)
        if not answers:
            print("  no answers")
            continue
        for rank, answer in enumerate(answers, start=1):
            print(f"  {rank}. {system.describe(answer)}")


if __name__ == "__main__":
    main()
