#!/usr/bin/env python3
"""The paper's Fig. 3 scenario on IMDB: multi-actor queries.

Finds three people who co-star in a movie (the "Bloom Wood Mortensen"
situation), runs the three-keyword query, and shows (a) that CI-Rank
picks the most important shared movie as the connector — where BANKS
provably ties across movies — and (b) the effect of the star index on
search time.

Run:  python examples/imdb_costar_search.py
"""

import time

from repro import (
    BanksScorer,
    CIRankSystem,
    ImdbConfig,
    generate_imdb,
)

MERGE_TABLES = ("actor", "actress", "director", "producer")
PERSON_RELATIONS = ("actor", "actress", "director")


def find_costar_triple(system):
    """Three people sharing at least one movie, preferring several."""
    graph = system.graph
    best = None
    for movie in graph.nodes_of_relation("movie"):
        people = sorted(
            n for n in graph.neighbors(movie)
            if graph.info(n).relation in PERSON_RELATIONS
        )
        if len(people) < 3:
            continue
        trio = people[:3]
        shared = None
        for person in trio:
            movies = {
                n for n in graph.neighbors(person)
                if graph.info(n).relation == "movie"
            }
            shared = movies if shared is None else shared & movies
        if shared and (best is None or len(shared) > len(best[1])):
            best = (trio, shared)
    return best


def main() -> None:
    print("generating a synthetic IMDB database...")
    db = generate_imdb(ImdbConfig(movies=150, actors=160, actresses=90,
                                  directors=45, producers=25, companies=20))
    system = CIRankSystem.from_database(db, merge_tables=MERGE_TABLES)
    graph = system.graph

    found = find_costar_triple(system)
    if found is None:
        raise SystemExit("no co-star triple found; raise dataset sizes")
    trio, shared = found
    names = [graph.info(p).text for p in trio]
    print(f"\nco-stars: {names}")
    print(f"shared movies ({len(shared)}):")
    for movie in sorted(shared):
        info = graph.info(movie)
        print(f"  [{info.attrs.get('votes', 0):>7} votes] {info.text}")

    query = " ".join(name.split()[-1] for name in names)
    print(f"\nkeyword query: {query!r}")

    start = time.perf_counter()
    answers = system.search(query, k=3, diameter=4)
    plain_time = time.perf_counter() - start

    print("\nCI-Rank ranking:")
    match = system.matcher.match(query)
    banks = BanksScorer(graph, match)
    for rank, answer in enumerate(answers, start=1):
        print(f"  {rank}. rwmp={answer.score:.4g} "
              f"banks={banks.score(answer.tree):.4g}")
        print(f"      {system.describe(answer)}")

    if len(shared) >= 2 and len(answers) >= 2:
        print("\nnote the BANKS column: connecting movies are free "
              "intermediate nodes, so BANKS scores tie — Fig. 3's blind "
              "spot; RWMP breaks the tie toward the important movie.")

    print("\nbuilding the star index and re-running...")
    system.build_star_index()
    start = time.perf_counter()
    system.search(query, k=3, diameter=4)
    indexed_time = time.perf_counter() - start
    print(f"  without index: {plain_time:.2f}s")
    print(f"  with star index: {indexed_time:.2f}s")


if __name__ == "__main__":
    main()
