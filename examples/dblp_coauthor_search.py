#!/usr/bin/env python3
"""The paper's motivating example on DBLP (Section I, Fig. 2).

Two prolific co-authors — the synthetic stand-ins for Papakonstantinou
and Ullman — are connected by many joint papers.  IR-style ranking
cannot tell the connecting papers apart (or prefers the shortest title);
CI-Rank ranks the most *important* (heavily cited) joint paper first.

The script finds such a pair in the synthetic DBLP data, runs the query
under CI-Rank, and contrasts the order with SPARK's.

Run:  python examples/dblp_coauthor_search.py
"""

from repro import (
    CIRankSystem,
    DblpConfig,
    SparkScorer,
    generate_dblp,
)


def find_prolific_pair(system):
    """Two authors sharing the most papers (>= 3)."""
    graph = system.graph
    best = None
    papers_of = {}
    for author in graph.nodes_of_relation("author"):
        papers_of[author] = {
            n for n in graph.neighbors(author)
            if graph.info(n).relation == "paper"
        }
    authors = sorted(papers_of)
    for i, a in enumerate(authors):
        for b in authors[i + 1:]:
            shared = papers_of[a] & papers_of[b]
            if len(shared) >= 3:
                if best is None or len(shared) > len(best[2]):
                    best = (a, b, shared)
    return best


def main() -> None:
    print("generating a synthetic DBLP database...")
    db = generate_dblp(DblpConfig(papers=300, authors=200, conferences=15))
    system = CIRankSystem.from_database(db)
    graph = system.graph

    pair = find_prolific_pair(system)
    if pair is None:
        raise SystemExit("no prolific co-author pair found; raise sizes")
    a, b, shared = pair
    print(f"\nco-authors: {graph.info(a).text!r} and {graph.info(b).text!r}")
    print(f"joint papers ({len(shared)}):")
    for paper in sorted(shared):
        info = graph.info(paper)
        print(f"  [{info.attrs.get('citations', 0):>3} citations] {info.text}")

    query = " ".join([
        graph.info(a).text.split()[-1],
        graph.info(b).text.split()[-1],
    ])
    print(f"\nkeyword query: {query!r}")

    answers = system.search(query, k=len(shared), diameter=4)
    print("\nCI-Rank ranking (connector citations in brackets):")
    match = system.matcher.match(query)
    spark = SparkScorer(system.index, match)
    for rank, answer in enumerate(answers, start=1):
        connectors = [
            n for n in answer.tree.nodes
            if graph.info(n).relation == "paper"
        ]
        cites = [graph.info(n).attrs.get("citations", 0) for n in connectors]
        print(f"  {rank}. cites={cites} rwmp={answer.score:.4g} "
              f"spark={spark.score(answer.tree):.4g}")
        print(f"      {system.describe(answer)}")

    if len(answers) >= 2:
        top = answers[0]
        top_cites = max(
            graph.info(n).attrs.get("citations", 0) for n in top.tree.nodes
        )
        print(f"\nCI-Rank's top answer routes through a paper with "
              f"{top_cites} citations — the collective-importance effect "
              "the IR-style baselines miss.")


if __name__ == "__main__":
    main()
