#!/usr/bin/env python3
"""CI-Rank over XML (the Section III generality claim).

Builds a small XML bibliography (elements, containment, IDREF
citations), maps it to the data graph, and runs keyword queries — the
identical RWMP + branch-and-bound stack, no relational schema anywhere.

Run:  python examples/xml_search.py
"""

from repro import XmlGraphConfig, XmlSearchSystem

BIBLIO = """
<bibliography>
  <conference id="c1"><name>very large databases</name></conference>
  <paper id="p1" year="1997" citations="38" venue="c1">
    <title>the tsimmis project heterogeneous integration</title>
    <author>yannis papakonstantinou</author>
    <author>jeffrey ullman</author>
  </paper>
  <paper id="p2" year="1998" citations="7" cite="p1" venue="c1">
    <title>capability based mediation in tsimmis</title>
    <author>yannis papakonstantinou</author>
    <author>jeffrey ullman</author>
  </paper>
  <paper id="p3" year="2003" citations="12" cite="p1 p2" venue="c1">
    <title>efficient keyword search over relational databases</title>
    <author>vagelis hristidis</author>
    <author>yannis papakonstantinou</author>
  </paper>
</bibliography>
"""


def main() -> None:
    config = XmlGraphConfig(
        numeric_attrs=("citations", "year"),
        idref_attrs=("cite", "venue"),
    )
    system = XmlSearchSystem.from_documents([BIBLIO], config)
    graph = system.graph
    print(f"XML graph: {graph.node_count} element nodes, "
          f"{graph.edge_count} edges")
    print(f"relations: {sorted(graph.relations())}")

    for query in ("papakonstantinou ullman", "tsimmis", "hristidis keyword"):
        print(f"\nquery: {query!r}")
        answers = system.search(query, k=3, diameter=4)
        if not answers:
            print("  no answers")
            continue
        for rank, answer in enumerate(answers, start=1):
            tags = "/".join(system.elements_of(answer))
            print(f"  {rank}. [{tags}] {system.describe(answer)}")

    # the motivating example carries over: the co-author query's top
    # answer routes through the heavily cited paper
    top = system.search("papakonstantinou ullman", k=1)[0]
    papers = [
        graph.info(n).attrs.get("citations")
        for n in top.tree.nodes
        if graph.info(n).relation == "paper"
    ]
    print(f"\ntop co-author answer routes through a paper with "
          f"{papers[0]} citations (the 38-citation TSIMMIS paper).")


if __name__ == "__main__":
    main()
