#!/usr/bin/env python3
"""The paper's Section II/III pitfalls, reproduced on hand-built graphs.

Three vignettes, each a literal reconstruction of a figure:

* Fig. 2 (TSIMMIS): DISCOVER2 ties the two connecting papers; SPARK
  prefers the *shorter-titled* (less cited) one; CI-Rank prefers the
  38-citation paper.
* Fig. 3 (Bloom/Wood/Mortensen): BANKS ties across connecting movies;
  CI-Rank prefers the popular one.
* Fig. 4 (Wilson Cruz): the all-node-average straw man is dominated by
  the famous free node (Tom Hanks) and ranks the sprawling wrong answer
  first; CI-Rank keeps the single-node answer on top.

Run:  python examples/ranking_pitfalls_demo.py
"""

from repro import (
    BanksScorer,
    DampeningModel,
    DataGraph,
    Discover2Scorer,
    InvertedIndex,
    JoinedTupleTree,
    KeywordMatcher,
    RWMPParams,
    RWMPScorer,
    SparkScorer,
    pagerank,
)
from repro.rwmp.scoring import all_node_average_score


def make_scorer(graph, query):
    index = InvertedIndex.build(graph)
    match = KeywordMatcher(index).match(query)
    dampening = DampeningModel(pagerank(graph), RWMPParams())
    return index, match, RWMPScorer(graph, index, match, dampening)


def fig2_tsimmis() -> None:
    print("=" * 72)
    print("Fig. 2 — 'papakonstantinou ullman' on a bibliography graph")
    g = DataGraph()
    g.add_node("author", "yannis papakonstantinou")             # 0
    g.add_node("author", "jeffrey ullman")                      # 1
    g.add_node("paper", "capability based mediation in tsimmis")  # 2 (7 cites)
    g.add_node("paper", "the tsimmis project integration of "
                        "heterogeneous information sources")      # 3 (38)
    for paper in (2, 3):
        g.add_link(0, paper, 1.0, 1.0)
        g.add_link(1, paper, 1.0, 1.0)
    # citations drive importance: add citing papers per the real counts
    for cites, paper in ((7, 2), (38, 3)):
        for _ in range(cites):
            citing = g.add_node("paper", "citing paper")
            g.add_link(citing, paper, 0.5, 0.1)

    index, match, scorer = make_scorer(g, "papakonstantinou ullman")
    tree_a = JoinedTupleTree([0, 1, 2], [(0, 2), (1, 2)])   # 7 cites
    tree_b = JoinedTupleTree([0, 1, 3], [(0, 3), (1, 3)])   # 38 cites
    discover = Discover2Scorer(index, match)
    spark = SparkScorer(index, match)
    print(f"{'':24s}{'7-cite paper':>16s}{'38-cite paper':>16s}")
    print(f"{'DISCOVER2':24s}{discover.score(tree_a):16.4f}"
          f"{discover.score(tree_b):16.4f}   (tie: blind to importance)")
    print(f"{'SPARK':24s}{spark.score(tree_a):16.4f}"
          f"{spark.score(tree_b):16.4f}   (prefers the shorter title!)")
    print(f"{'CI-Rank (RWMP)':24s}{scorer.score(tree_a):16.4f}"
          f"{scorer.score(tree_b):16.4f}   (prefers the cited paper)")
    assert scorer.score(tree_b) > scorer.score(tree_a)


def fig3_costars() -> None:
    print("=" * 72)
    print("Fig. 3 — 'bloom wood mortensen' with two candidate movies")
    g = DataGraph()
    g.add_node("actor", "orlando bloom")       # 0
    g.add_node("actor", "elijah wood")         # 1
    g.add_node("actor", "viggo mortensen")     # 2
    g.add_node("movie", "fellowship")          # 3 (popular)
    g.add_node("movie", "obscure film")        # 4
    for actor in (0, 1, 2):
        g.add_link(actor, 3, 1.0, 1.0)
        g.add_link(actor, 4, 1.0, 1.0)
    for i in range(12):
        fan = g.add_node("actor", f"fan {i}")
        g.add_link(fan, 3, 1.0, 1.0)

    index, match, scorer = make_scorer(g, "bloom wood mortensen")
    banks = BanksScorer(g, match)
    popular = JoinedTupleTree([0, 1, 2, 3], [(0, 3), (1, 3), (2, 3)])
    obscure = JoinedTupleTree([0, 1, 2, 4], [(0, 4), (1, 4), (2, 4)])
    print(f"{'':24s}{'popular movie':>16s}{'obscure movie':>16s}")
    print(f"{'BANKS':24s}{banks.score(popular):16.4f}"
          f"{banks.score(obscure):16.4f}   (tie: intermediate node ignored)")
    print(f"{'CI-Rank (RWMP)':24s}{scorer.score(popular):16.4f}"
          f"{scorer.score(obscure):16.4f}   (prefers the popular movie)")
    assert scorer.score(popular) > scorer.score(obscure)


def fig4_free_node_domination() -> None:
    print("=" * 72)
    print("Fig. 4 — 'wilson cruz': the free-node domination problem")
    g = DataGraph()
    g.add_node("actor", "wilson cruz")                 # 0 = T1
    g.add_node("movie", "charlie wilson war")          # 1
    g.add_node("actor", "tom hanks")                   # 2 (famous, free)
    g.add_node("tv", "america tribute heroes")         # 3
    g.add_node("actress", "penelope cruz")             # 4
    g.add_link(1, 2, 1.0, 1.0)
    g.add_link(2, 3, 1.0, 1.0)
    g.add_link(3, 4, 1.0, 1.0)
    g.add_link(0, 3, 0.5, 0.5)
    for i in range(40):
        movie = g.add_node("movie", f"movie {i}")
        g.add_link(movie, 2, 1.0, 1.0)

    index, match, scorer = make_scorer(g, "wilson cruz")
    importance = scorer.dampening.importance
    t1 = JoinedTupleTree.single(0)
    t2 = JoinedTupleTree([1, 2, 3, 4], [(1, 2), (2, 3), (3, 4)])
    print(f"{'':24s}{'T1 (single node)':>18s}{'T2 (via Tom Hanks)':>20s}")
    print(f"{'all-node average':24s}"
          f"{all_node_average_score(t1, importance):18.6f}"
          f"{all_node_average_score(t2, importance):20.6f}"
          "   (dominated by the free node!)")
    print(f"{'CI-Rank (RWMP)':24s}{scorer.score(t1):18.4f}"
          f"{scorer.score(t2):20.4f}   (T1 correctly on top)")
    assert scorer.score(t1) > scorer.score(t2)
    assert all_node_average_score(t2, importance) > \
        all_node_average_score(t1, importance)


def main() -> None:
    fig2_tsimmis()
    fig3_costars()
    fig4_free_node_domination()
    print("=" * 72)
    print("all three pitfalls reproduced; CI-Rank avoids each.")


if __name__ == "__main__":
    main()
