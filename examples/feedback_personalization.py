#!/usr/bin/env python3
"""User-feedback biasing (Section VI-A's AOL labeling, future work §VIII).

The paper labels 29k frequent queries from the AOL log and uses them to
bias CI-Rank.  This example simulates such a log over the synthetic
IMDB data, folds the frequent clicks into the teleport vector of
Equation (1), and shows how a heavily-clicked movie climbs the ranking
for a query it competes in.

Run:  python examples/feedback_personalization.py
"""

from repro import (
    CIRankSystem,
    FeedbackModel,
    ImdbConfig,
    generate_imdb,
    simulate_query_log,
)

MERGE_TABLES = ("actor", "actress", "director", "producer")


def connector_of(answer, graph):
    movies = [
        n for n in answer.tree.nodes
        if graph.info(n).relation == "movie"
    ]
    return movies[0] if movies else None


def main() -> None:
    print("generating a synthetic IMDB database...")
    db = generate_imdb(ImdbConfig(movies=150, actors=160, actresses=90,
                                  directors=45, producers=25, companies=20))
    system = CIRankSystem.from_database(db, merge_tables=MERGE_TABLES)
    graph = system.graph

    print("simulating an AOL-style click log...")
    log = simulate_query_log(graph, system.index, records=400)
    frequent = [c for c in log if c.frequent]
    print(f"  {len(log)} records, {len(frequent)} frequent "
          "(>= 3 occurrences, the paper's labeling threshold)")

    # Find a pair of co-stars with >= 2 shared movies to query.
    target = None
    for movie in graph.nodes_of_relation("movie"):
        people = sorted(
            n for n in graph.neighbors(movie)
            if graph.info(n).relation in ("actor", "actress", "director")
        )
        for i, a in enumerate(people):
            for b in people[i + 1:]:
                shared = sorted(
                    m for m in graph.neighbors(a)
                    if graph.info(m).relation == "movie"
                    and m in graph.neighbors(b)
                )
                if len(shared) >= 2:
                    target = (a, b, shared)
                    break
            if target:
                break
        if target:
            break
    if target is None:
        raise SystemExit("no suitable co-star pair; raise dataset sizes")
    a, b, shared = target
    query = " ".join([
        graph.info(a).text.split()[-1], graph.info(b).text.split()[-1],
    ])
    print(f"\nquery: {query!r}; candidate connectors: "
          f"{[graph.info(m).text for m in shared]}")

    before = system.search(query, k=3, diameter=4)
    print("\nranking without feedback:")
    for rank, answer in enumerate(before, start=1):
        print(f"  {rank}. {system.describe(answer)}")

    # Users overwhelmingly click the *least* important shared movie —
    # feedback should be able to override the static importance.
    underdog = min(
        shared, key=lambda m: system.importance[m]
    )
    print(f"\nfeeding 200 clicks on {graph.info(underdog).text!r}...")
    feedback = FeedbackModel(graph, bias_strength=0.8)
    for click in frequent:
        feedback.record_click(click.clicked_node, weight=click.frequency)
    feedback.record_click(underdog, weight=200.0)
    system.apply_feedback(feedback)

    after = system.search(query, k=3, diameter=4)
    print("ranking with feedback:")
    for rank, answer in enumerate(after, start=1):
        print(f"  {rank}. {system.describe(answer)}")

    before_top = connector_of(before[0], graph)
    after_top = connector_of(after[0], graph)
    if before_top != after_top:
        print("\nfeedback flipped the top connector — user preference "
              "overrode static importance.")
    else:
        print("\ntop connector unchanged (the static signal was already "
              "aligned with the clicks); the underdog's rank still "
              "improved through the biased teleport vector.")


if __name__ == "__main__":
    main()
